"""Physical plan nodes and the batched ``open()/next_batch()/close()``
execution protocol.

The optimizer's second phase (:mod:`repro.engine.lowering`) lowers a
logical :mod:`repro.algebra.operators` tree into these nodes; the
pipelined engine (:mod:`repro.engine.pipeline`) then drives the root with
``open`` / ``next_batch`` / ``close`` over fixed-size row batches — the
Volcano protocol, vectorized, with late materialization into a
:class:`~repro.relation.Relation` only at the sink.

The physical operator set makes the execution decisions the logical
algebra leaves open — the decisions the paper's Figures 6-9 measure:

* :class:`HashJoin` vs :class:`NestedLoopJoin` — equi-join conjuncts are
  split out at lowering time, so the Unn strategy's equality joins hash
  while Left/Move's disjunctive ``Jsub`` conditions nested-loop;
* :class:`InitPlanSublink` vs :class:`SubPlanSublink` — uncorrelated
  sublinks execute once per statement (PostgreSQL's InitPlan),
  correlated ones once per outer row (parameterized SubPlan);
* :class:`StreamingLimit` — stops pulling from its child once satisfied
  instead of materializing the full input.

Nodes carry their batch-compiled expression closures (built lazily on
first use and cached *on the physical node*, so a plan-cached statement
re-executes without recompiling).  A physical plan holds per-execution
state only between ``open`` and ``close``; single-threaded re-execution
of a cached plan is safe because ``open`` resets everything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..datatypes import is_true
from ..expressions.ast import Expr, Sublink
from ..expressions.compiler import (
    BatchFilter, BatchProjector, BatchValues, RowCompiled,
    compile_batch_predicate, compile_batch_projector, compile_batch_values,
    compile_row,
)
from ..expressions.evaluator import EvalContext, Frame, evaluate
from ..expressions.aggregates import make_accumulator
from ..expressions.printer import format_expr
from ..algebra.operators import JoinKind, SetOpKind, SortKey
from ..relation import Relation
from ..schema import Schema

if TYPE_CHECKING:
    from .pipeline import PipelineEngine
    from .stats import ExecutionStats


class SublinkPlan:
    """A lowered sublink query attached to the physical node whose
    expressions reference it, keyed by the identity of the *logical*
    query tree (which is what the expression evaluator hands back to the
    engine's ``run_subquery`` hook)."""

    __slots__ = ("sublink", "query", "plan")

    correlated = False

    def __init__(self, sublink: Sublink, query: Any,
                 plan: "PhysicalOperator") -> None:
        self.sublink = sublink
        self.query = query        # logical operator tree (identity key)
        self.plan = plan

    @property
    def label(self) -> str:
        return (f"{type(self).__name__} "
                f"({self.sublink.kind.value})")


class InitPlanSublink(SublinkPlan):
    """An uncorrelated sublink: executed at most once per statement, the
    result cached for every later evaluation (PostgreSQL's InitPlan)."""

    correlated = False


class SubPlanSublink(SublinkPlan):
    """A correlated sublink: re-executed for every outer row with the
    outer frames bound (PostgreSQL's parameterized SubPlan)."""

    correlated = True


class PhysicalOperator:
    """Base class of physical plan nodes.

    Subclasses implement ``_reset`` (per-execution state) and
    ``next_batch``; ``open`` wires the engine and outer frames through the
    tree and ``close`` releases per-execution state.

    ``est_rows`` / ``est_cost`` are the cost model's predictions, filled
    in by catalog-aware lowering and rendered by ``EXPLAIN`` (estimated
    vs actual under ``EXPLAIN ANALYZE``); both stay None when lowering
    ran without a catalog.
    """

    __slots__ = ("engine", "frames", "sublinks", "est_rows", "est_cost")

    #: The batch type ``next_batch`` produces: ``"rows"`` (list of row
    #: tuples) or ``"columnar"`` (a ColumnBatch).  The vectorized engine
    #: inserts bridges wherever the formats meet.
    batch_format = "rows"
    #: Format-conversion bridges are excluded from the vectorized vs
    #: row-fallback node counts EXPLAIN ANALYZE reports.
    is_bridge = False

    def __init__(self) -> None:
        self.engine = None
        self.frames: tuple = ()
        self.sublinks: tuple[SublinkPlan, ...] = ()
        self.est_rows: float | None = None
        self.est_cost: float | None = None

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def open(self, engine: PipelineEngine,
             frames: tuple) -> None:
        self.engine = engine
        self.frames = frames
        if engine.collect_stats:
            engine.stats.bump(self)
            engine.stats.node(self).loops += 1
        self._reset()
        for child in self.children():
            child.open(engine, frames)

    def _reset(self) -> None:
        pass

    def next_batch(self) -> list | None:
        raise NotImplementedError

    def close(self) -> None:
        self.engine = None
        self.frames = ()
        self._release()
        for child in self.children():
            child.close()

    def _release(self) -> None:
        """Drop materialized per-execution state (hash tables, sorted
        buffers, ...) so a plan-cached node does not pin the previous
        execution's intermediates between statements.  ``_reset`` rebuilds
        everything on the next ``open``."""

    def label(self) -> str:
        return type(self).__name__


class PhysicalPlan:
    """A lowered statement: the physical root plus the logical tree it
    came from (kept alive — sublink registry keys are logical-node
    identities) and the output schema for the sink relation."""

    __slots__ = ("root", "logical", "schema", "subplans", "vectorized",
                 "vector_counts")

    def __init__(self, root: PhysicalOperator, logical: Any,
                 schema: Schema, subplans: dict[int, SublinkPlan]) -> None:
        self.root = root
        self.logical = logical
        self.schema = schema
        self.subplans = subplans
        #: Set by :func:`repro.engine.vectorized.vectorize_plan` once the
        #: in-place columnar rewrite ran (idempotency guard); counts is
        #: then ``(columnar_nodes, row_fallback_nodes)``.
        self.vectorized = False
        self.vector_counts: tuple[int, int] | None = None

    def nodes(self) -> Iterator[PhysicalOperator]:
        """All physical nodes of the plan, sublink plans included."""
        stack: list[PhysicalOperator] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())
            for sub in node.sublinks:
                stack.append(sub.plan)


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------

class SeqScan(PhysicalOperator):
    """Batched scan of a catalog table (rows fetched at ``open`` so DML
    between executions of a cached plan is visible)."""

    __slots__ = ("table", "alias", "names", "_rows", "_pos")

    def __init__(self, table: str, alias: str, names: tuple[str, ...]) -> None:
        super().__init__()
        self.table = table
        self.alias = alias
        self.names = names
        self._rows: list[tuple] = []
        self._pos = 0

    def _reset(self) -> None:
        self._rows = self.engine.catalog.get(self.table).rows
        self._pos = 0

    def _release(self) -> None:
        self._rows = []

    def next_batch(self) -> list | None:
        if self._pos >= len(self._rows):
            return None
        batch = self._rows[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(batch)
        return batch

    def label(self) -> str:
        return f"SeqScan {self.table} as {self.alias} -> {list(self.names)}"


class IndexScan(PhysicalOperator):
    """Scan of a catalog table through a secondary index.

    ``op`` is the lookup comparison (``=`` for point lookups on any index
    kind; ``< <= > >=`` for range scans, which require a sorted index).
    The key expression is evaluated once per ``open`` — it may reference
    outer frames (correlated sublinks) and ``?`` parameters, so a cached
    plan re-executes with fresh keys.  If the index disappeared between
    lowering and execution (plans lowered outside the session plan cache
    can outlive a ``DROP INDEX``), the scan degrades to a filtered
    sequential scan rather than failing.
    """

    __slots__ = ("table", "alias", "names", "column", "position", "op",
                 "key_expr", "index_kind", "_rows", "_pos")

    def __init__(self, table: str, alias: str, names: tuple[str, ...],
                 column: str, position: int, op: str, key_expr: Expr,
                 index_kind: str) -> None:
        super().__init__()
        self.table = table
        self.alias = alias
        self.names = names
        self.column = column
        self.position = position
        self.op = op
        self.key_expr = key_expr
        self.index_kind = index_kind
        self._rows: list[tuple] = []
        self._pos = 0

    def _key_value(self) -> Any:
        context = EvalContext(self.frames, self.engine, self.engine.params)
        return evaluate(self.key_expr, context)

    def _reset(self) -> None:
        self._pos = 0
        self.engine.stats.index_scans += 1
        catalog = self.engine.catalog
        table = catalog.get(self.table)
        kinds = ("sorted",) if self.op != "=" else None
        index = catalog.index_for(self.table, self.column, kinds)
        value = self._key_value()
        if value is None:
            self._rows = []    # NULL matches neither = nor ranges
            return
        if index is None:
            self._rows = self._scan_fallback(table.rows, value)
            return
        index.ensure(table.rows)
        try:
            if self.op == "=":
                # Hash buckets match by Python equality (where 1 == True),
                # but the equivalent SeqScan + Filter plan applies SQL
                # comparison semantics and errors on incomparable
                # operands — probe one real key first so both plans
                # match, and fail, alike.
                from ..datatypes import compare
                sample = index.sample_key()
                if sample is not None:
                    compare("=", sample, value)
                self._rows = index.lookup(value)
            elif self.op in ("<", "<="):
                self._rows = index.lookup_range(
                    None, value, high_inclusive=self.op == "<=")
            else:
                self._rows = index.lookup_range(
                    value, None, low_inclusive=self.op == ">=")
        except TypeError:
            # same error type the SeqScan + Filter plan raises for an
            # incomparable operand, instead of a raw bisect TypeError
            from ..errors import ExpressionError
            raise ExpressionError(
                f"cannot compare {self.column!r} values with "
                f"{type(value).__name__} ({value!r})") from None

    def _scan_fallback(self, rows: list[tuple],
                       value: Any) -> list[tuple]:
        from ..datatypes import compare
        position = self.position
        op = self.op
        return [row for row in rows
                if compare(op, row[position], value) is True]

    def _release(self) -> None:
        self._rows = []

    def next_batch(self) -> list | None:
        if self._pos >= len(self._rows):
            return None
        batch = self._rows[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(batch)
        return batch

    def label(self) -> str:
        return (f"IndexScan {self.table} as {self.alias} using "
                f"{self.index_kind} on {self.column} "
                f"{self.op} {format_expr(self.key_expr)}")


class ValuesScan(PhysicalOperator):
    """Batched scan of a literal relation."""

    __slots__ = ("rows", "names", "_pos")

    def __init__(self, rows: list[tuple], names: tuple[str, ...]) -> None:
        super().__init__()
        self.rows = rows
        self.names = names
        self._pos = 0

    def _reset(self) -> None:
        self._pos = 0

    def next_batch(self) -> list | None:
        if self._pos >= len(self.rows):
            return None
        batch = self.rows[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(batch)
        return batch

    def label(self) -> str:
        return f"ValuesScan {len(self.rows)} row(s) -> {list(self.names)}"


# ---------------------------------------------------------------------------
# Row pipelines
# ---------------------------------------------------------------------------

class Filter(PhysicalOperator):
    """Streaming selection: the predicate is batch-compiled once per node
    and applied to each input batch in a single call."""

    __slots__ = ("child", "condition", "index", "_fn", "_fn_compiled")

    def __init__(self, child: PhysicalOperator, condition: Expr,
                 index: dict[str, int]) -> None:
        super().__init__()
        self.child = child
        self.condition = condition
        self.index = index
        self._fn = None
        self._fn_compiled: bool | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _predicate(self) -> BatchFilter:
        flag = self.engine.compile_expressions
        if self._fn is None or self._fn_compiled is not flag:
            self._fn = compile_batch_predicate(
                self.condition, self.index, use_compiler=flag)
            self._fn_compiled = flag
        return self._fn

    def next_batch(self) -> list | None:
        fn = self._predicate()
        engine = self.engine
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                return None
            out = fn(batch, self.frames, engine, engine.params)
            if out:
                return out

    def label(self) -> str:
        return f"Filter {format_expr(self.condition)}"


class Project(PhysicalOperator):
    """Streaming projection; ``distinct`` keeps first occurrences across
    the whole stream (bag -> set projection)."""

    __slots__ = ("child", "items", "distinct", "index", "_fn",
                 "_fn_compiled", "_seen")

    def __init__(self, child: PhysicalOperator, items: tuple,
                 distinct: bool, index: dict[str, int]) -> None:
        super().__init__()
        self.child = child
        self.items = items
        self.distinct = distinct
        self.index = index
        self._fn = None
        self._fn_compiled: bool | None = None
        self._seen: dict | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._seen = {} if self.distinct else None

    def _projector(self) -> BatchProjector:
        flag = self.engine.compile_expressions
        if self._fn is None or self._fn_compiled is not flag:
            self._fn = compile_batch_projector(
                tuple(expr for _, expr in self.items), self.index,
                use_compiler=flag)
            self._fn_compiled = flag
        return self._fn

    def next_batch(self) -> list | None:
        fn = self._projector()
        engine = self.engine
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                return None
            out = fn(batch, self.frames, engine, engine.params)
            if self.distinct:
                seen = self._seen
                fresh = []
                for row in out:
                    if row not in seen:
                        seen[row] = None
                        fresh.append(row)
                out = fresh
            if out:
                return out

    def label(self) -> str:
        kind = "Distinct" if self.distinct else "Project"
        items = ", ".join(
            f"{format_expr(expr)} AS {name}" for name, expr in self.items)
        return f"{kind} [{items}]"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

class HashJoin(PhysicalOperator):
    """Equi-join: builds a hash table over the right input on first pull,
    then streams left batches through the probe.  NULL keys never join;
    LEFT kind pads unmatched left rows."""

    __slots__ = ("left", "right", "left_positions", "right_positions",
                 "residual", "kind", "right_width", "index",
                 "_table", "_residual_fn", "_fn_compiled")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 keys: list[tuple[int, int]], residual: Expr | None,
                 kind: JoinKind, right_width: int, index: dict[str, int]) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_positions = tuple(l for l, _ in keys)
        self.right_positions = tuple(r for _, r in keys)
        self.residual = residual
        self.kind = kind
        self.right_width = right_width
        self.index = index
        self._table: dict | None = None
        self._residual_fn = None
        self._fn_compiled: bool | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _reset(self) -> None:
        self._table = None
        self.engine.stats.hash_joins += 1

    def _release(self) -> None:
        self._table = None

    def _build(self) -> dict:
        table: dict[tuple, list[tuple]] = {}
        positions = self.right_positions
        engine = self.engine
        while True:
            batch = engine.pull(self.right)
            if batch is None:
                break
            for right in batch:
                key = tuple(right[p] for p in positions)
                if any(v is None for v in key):
                    continue  # NULL never equi-joins
                table.setdefault(key, []).append(right)
        return table

    def _residual(self) -> BatchFilter | None:
        if self.residual is None:
            return None
        flag = self.engine.compile_expressions
        if self._residual_fn is None or self._fn_compiled is not flag:
            self._residual_fn = compile_batch_predicate(
                self.residual, self.index, use_compiler=flag)
            self._fn_compiled = flag
        return self._residual_fn

    def next_batch(self) -> list | None:
        if self._table is None:
            self._table = self._build()
        table = self._table
        residual = self._residual()
        engine = self.engine
        positions = self.left_positions
        pad_left = self.kind == JoinKind.LEFT
        null_pad = (None,) * self.right_width
        while True:
            batch = engine.pull(self.left)
            if batch is None:
                return None
            out: list[tuple] = []
            for left in batch:
                key = tuple(left[p] for p in positions)
                matched = False
                if not any(v is None for v in key):
                    bucket = table.get(key)
                    if bucket:
                        if residual is None:
                            for right in bucket:
                                out.append(left + right)
                            matched = True
                        else:
                            kept = residual(
                                [left + right for right in bucket],
                                self.frames, engine, engine.params)
                            if kept:
                                out.extend(kept)
                                matched = True
                if pad_left and not matched:
                    out.append(left + null_pad)
            if out:
                return out

    def label(self) -> str:
        keys = ", ".join(
            f"left[{l}] = right[{r}]"
            for l, r in zip(self.left_positions, self.right_positions))
        text = f"HashJoin {self.kind.value} on [{keys}]"
        if self.residual is not None:
            text += f" residual {format_expr(self.residual)}"
        return text


class NestedLoopJoin(PhysicalOperator):
    """General join: materializes the right input once, then streams the
    left.  ``condition=None`` is the pure cross product (logical
    condition TRUE)."""

    __slots__ = ("left", "right", "condition", "kind", "right_width",
                 "index", "_right_rows", "_pred", "_pred_needs_ctx",
                 "_pred_compiled")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 condition: Expr | None, kind: JoinKind, right_width: int,
                 index: dict[str, int]) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.right_width = right_width
        self.index = index
        self._right_rows: list[tuple] | None = None
        self._pred = None
        self._pred_needs_ctx = True
        self._pred_compiled: bool | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _reset(self) -> None:
        self._right_rows = None
        if self.condition is not None:
            self.engine.stats.nested_loop_joins += 1

    def _release(self) -> None:
        self._right_rows = None

    def _materialize_right(self) -> list[tuple]:
        rows: list[tuple] = []
        while True:
            batch = self.engine.pull(self.right)
            if batch is None:
                return rows
            rows.extend(batch)

    def _predicate(self) -> RowCompiled:
        flag = self.engine.compile_expressions
        if self._pred is None or self._pred_compiled is not flag:
            if flag:
                self._pred, self._pred_needs_ctx = compile_row(
                    self.condition, self.index)
            else:
                condition = self.condition
                self._pred = (
                    lambda row, ctx: evaluate(condition, ctx))
                self._pred_needs_ctx = True
            self._pred_compiled = flag
        return self._pred

    def next_batch(self) -> list | None:
        if self._right_rows is None:
            self._right_rows = self._materialize_right()
        right_rows = self._right_rows
        engine = self.engine
        pad_left = self.kind == JoinKind.LEFT
        null_pad = (None,) * self.right_width

        if self.condition is None:
            while True:
                batch = engine.pull(self.left)
                if batch is None:
                    return None
                if not right_rows:
                    if pad_left:
                        return [left + null_pad for left in batch]
                    continue
                return [left + right
                        for left in batch for right in right_rows]

        pred = self._predicate()
        frame = Frame(self.index, None)
        ctx = EvalContext((*self.frames, frame), engine, engine.params)
        while True:
            batch = engine.pull(self.left)
            if batch is None:
                return None
            out: list[tuple] = []
            for left in batch:
                matched = False
                for right in right_rows:
                    combined = left + right
                    frame.row = combined
                    if is_true(pred(combined, ctx)):
                        out.append(combined)
                        matched = True
                if pad_left and not matched:
                    out.append(left + null_pad)
            if out:
                return out

    def label(self) -> str:
        if self.condition is None:
            return f"NestedLoopJoin {self.kind.value} (cross product)"
        return (f"NestedLoopJoin {self.kind.value} "
                f"on {format_expr(self.condition)}")


class IndexNestedLoopJoin(PhysicalOperator):
    """Equi-join that probes a base table's secondary index per outer row
    instead of building a hash table — the winning plan when the outer
    input is far smaller than the (indexed) inner table.

    The inner side is not a child operator: rows come straight from the
    index (or, if the index disappeared, from an ad-hoc hash table built
    over the table — the same work a :class:`HashJoin` would do, so the
    plan only ever degrades to hash-join performance, never to a scan per
    outer row).
    """

    __slots__ = ("left", "table", "alias", "right_names", "right_width",
                 "left_position", "right_column", "right_position",
                 "residual", "kind", "index", "_index_obj", "_fallback",
                 "_residual_fn", "_fn_compiled")

    def __init__(self, left: PhysicalOperator, table: str, alias: str,
                 right_names: tuple[str, ...], left_position: int,
                 right_column: str, right_position: int,
                 residual: Expr | None, kind: JoinKind,
                 index: dict[str, int]) -> None:
        super().__init__()
        self.left = left
        self.table = table
        self.alias = alias
        self.right_names = right_names
        self.right_width = len(right_names)
        self.left_position = left_position
        self.right_column = right_column
        self.right_position = right_position
        self.residual = residual
        self.kind = kind
        self.index = index
        self._index_obj = None
        self._fallback: dict | None = None
        self._residual_fn = None
        self._fn_compiled: bool | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left,)

    def _reset(self) -> None:
        catalog = self.engine.catalog
        table = catalog.get(self.table)
        self._index_obj = catalog.index_for(self.table, self.right_column)
        self._fallback = None
        if self._index_obj is not None:
            self._index_obj.ensure(table.rows)
        else:
            fallback: dict = {}
            position = self.right_position
            for row in table.rows:
                key = row[position]
                if key is not None:
                    fallback.setdefault(key, []).append(row)
            self._fallback = fallback
        self.engine.stats.index_nl_joins += 1

    def _release(self) -> None:
        self._index_obj = None
        self._fallback = None

    def _probe(self, key: Any) -> list[tuple]:
        if key is None:
            return []
        if self._index_obj is not None:
            try:
                return self._index_obj.lookup(key)
            except TypeError:
                # a sorted index orders by key; a probe value that is
                # not comparable with the keys matches nothing — the
                # same no-match a HashJoin's dict lookup produces
                return []
        return self._fallback.get(key, [])

    def _residual(self) -> BatchFilter | None:
        if self.residual is None:
            return None
        flag = self.engine.compile_expressions
        if self._residual_fn is None or self._fn_compiled is not flag:
            self._residual_fn = compile_batch_predicate(
                self.residual, self.index, use_compiler=flag)
            self._fn_compiled = flag
        return self._residual_fn

    def next_batch(self) -> list | None:
        engine = self.engine
        residual = self._residual()
        position = self.left_position
        pad_left = self.kind == JoinKind.LEFT
        null_pad = (None,) * self.right_width
        while True:
            batch = engine.pull(self.left)
            if batch is None:
                return None
            out: list[tuple] = []
            for left in batch:
                matched = False
                bucket = self._probe(left[position])
                if bucket:
                    if residual is None:
                        for right in bucket:
                            out.append(left + right)
                        matched = True
                    else:
                        kept = residual(
                            [left + right for right in bucket],
                            self.frames, engine, engine.params)
                        if kept:
                            out.extend(kept)
                            matched = True
                if pad_left and not matched:
                    out.append(left + null_pad)
            if out:
                return out

    def label(self) -> str:
        text = (f"IndexNestedLoopJoin {self.kind.value} probe "
                f"{self.table}.{self.right_column} "
                f"(outer key at [{self.left_position}])")
        if self.residual is not None:
            text += f" residual {format_expr(self.residual)}"
        return text


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

class HashAggregate(PhysicalOperator):
    """Blocking grouped aggregation: drains its input on first pull, then
    emits one row per group in batches.  Aggregate arguments are
    batch-compiled and evaluated column-wise per input batch."""

    __slots__ = ("child", "group", "group_positions", "aggregates",
                 "index", "_arg_fns", "_fn_compiled", "_result", "_pos")

    def __init__(self, child: PhysicalOperator, group: tuple[str, ...],
                 group_positions: tuple[int, ...], aggregates: tuple,
                 index: dict[str, int]) -> None:
        super().__init__()
        self.child = child
        self.group = group
        self.group_positions = group_positions
        self.aggregates = aggregates
        self.index = index
        self._arg_fns = None
        self._fn_compiled: bool | None = None
        self._result: list[tuple] | None = None
        self._pos = 0

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._result = None
        self._pos = 0

    def _release(self) -> None:
        self._result = None

    def _fns(self) -> list[BatchValues | None]:
        flag = self.engine.compile_expressions
        if self._arg_fns is None or self._fn_compiled is not flag:
            self._arg_fns = [
                None if call.arg is None else compile_batch_values(
                    call.arg, self.index, use_compiler=flag)
                for _, call in self.aggregates]
            self._fn_compiled = flag
        return self._arg_fns

    def _make_accumulators(self) -> list:
        return [make_accumulator(call.name, star=call.arg is None,
                                 distinct=call.distinct)
                for _, call in self.aggregates]

    def _aggregate(self) -> list[tuple]:
        engine = self.engine
        arg_fns = self._fns()
        positions = self.group_positions
        groups: dict[tuple, list] = {}
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                break
            columns = [
                None if fn is None
                else fn(batch, self.frames, engine, engine.params)
                for fn in arg_fns]
            for i, row in enumerate(batch):
                key = tuple(row[p] for p in positions)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = self._make_accumulators()
                    groups[key] = accumulators
                for column, accumulator in zip(columns, accumulators):
                    accumulator.add(1 if column is None else column[i])
        if not groups and not self.group:
            groups[()] = self._make_accumulators()
        return [key + tuple(acc.result() for acc in accumulators)
                for key, accumulators in groups.items()]

    def next_batch(self) -> list | None:
        if self._result is None:
            self._result = self._aggregate()
            self._pos = 0
        if self._pos >= len(self._result):
            return None
        batch = self._result[
            self._pos:self._pos + self.engine.batch_size]
        self._pos += len(batch)
        return batch

    def label(self) -> str:
        aggs = ", ".join(
            f"{format_expr(call)} AS {name}"
            for name, call in self.aggregates)
        return f"HashAggregate group={list(self.group)} [{aggs}]"


# ---------------------------------------------------------------------------
# Set operations
# ---------------------------------------------------------------------------

class SetOperation(PhysicalOperator):
    """Bag/set union, intersection and difference.

    ``UNION ALL`` streams (left batches, then right batches — bag union is
    concatenation); every other flavour drains both inputs and reuses the
    multiplicity arithmetic of :class:`~repro.relation.Relation`.
    """

    __slots__ = ("kind", "all", "left", "right", "schema",
                 "_result", "_pos", "_streaming_right")

    def __init__(self, kind: SetOpKind, all_: bool,
                 left: PhysicalOperator, right: PhysicalOperator,
                 schema: Schema) -> None:
        super().__init__()
        self.kind = kind
        self.all = all_
        self.left = left
        self.right = right
        self.schema = schema
        self._result: list[tuple] | None = None
        self._pos = 0
        self._streaming_right = False

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _reset(self) -> None:
        self._result = None
        self._pos = 0
        self._streaming_right = False

    def _release(self) -> None:
        self._result = None

    @property
    def _streams(self) -> bool:
        return self.kind == SetOpKind.UNION and self.all

    def _drain(self, child: PhysicalOperator) -> list[tuple]:
        rows: list[tuple] = []
        while True:
            batch = self.engine.pull(child)
            if batch is None:
                return rows
            rows.extend(batch)

    def _compute(self) -> list[tuple]:
        left = Relation.from_trusted_rows(self.schema, self._drain(self.left))
        right = Relation.from_trusted_rows(
            self.schema, self._drain(self.right))
        if self.kind == SetOpKind.UNION:
            result = left.set_union(right)
        elif self.kind == SetOpKind.INTERSECT:
            result = left.bag_intersect(right) if self.all else \
                left.set_intersect(right)
        else:
            result = left.bag_difference(right) if self.all else \
                left.set_difference(right)
        return result.rows

    def next_batch(self) -> list | None:
        if self._streams:
            if not self._streaming_right:
                batch = self.engine.pull(self.left)
                if batch is not None:
                    return batch
                self._streaming_right = True
            return self.engine.pull(self.right)
        if self._result is None:
            self._result = self._compute()
            self._pos = 0
        if self._pos >= len(self._result):
            return None
        batch = self._result[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(batch)
        return batch

    def label(self) -> str:
        flavor = "ALL" if self.all else "DISTINCT"
        return f"SetOp {self.kind.value.upper()} {flavor}"


# ---------------------------------------------------------------------------
# Ordering and limits
# ---------------------------------------------------------------------------

class SortNode(PhysicalOperator):
    """Blocking sort: drains the input, applies the shared multi-key SQL
    NULL-ordering sort, emits in batches."""

    __slots__ = ("child", "keys", "index", "_result", "_pos")

    def __init__(self, child: PhysicalOperator, keys: tuple[SortKey, ...],
                 index: dict[str, int]) -> None:
        super().__init__()
        self.child = child
        self.keys = keys
        self.index = index
        self._result: list[tuple] | None = None
        self._pos = 0

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._result = None
        self._pos = 0

    def _release(self) -> None:
        self._result = None

    def next_batch(self) -> list | None:
        if self._result is None:
            from .materialize import sort_rows
            rows: list[tuple] = []
            while True:
                batch = self.engine.pull(self.child)
                if batch is None:
                    break
                rows.extend(batch)
            sort_rows(rows, self.keys, self.frames, self.index,
                      self.engine, self.engine.params)
            self._result = rows
            self._pos = 0
        if self._pos >= len(self._result):
            return None
        batch = self._result[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(batch)
        return batch

    def label(self) -> str:
        keys = ", ".join(
            f"{format_expr(k.expr)} {'ASC' if k.ascending else 'DESC'}"
            for k in self.keys)
        return f"Sort [{keys}]"


class StreamingLimit(PhysicalOperator):
    """LIMIT/OFFSET that stops pulling from its child once satisfied —
    upstream operators never produce the rows a bounded query discards."""

    __slots__ = ("child", "count", "offset", "_skipped", "_emitted",
                 "_done")

    def __init__(self, child: PhysicalOperator, count: int | None,
                 offset: int) -> None:
        super().__init__()
        self.child = child
        self.count = count
        self.offset = offset
        self._skipped = 0
        self._emitted = 0
        self._done = False

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._skipped = 0
        self._emitted = 0
        self._done = False

    def next_batch(self) -> list | None:
        if self._done:
            return None
        if self.count is not None and self._emitted >= self.count:
            self._done = True
            return None
        while True:
            batch = self.engine.pull(self.child)
            if batch is None:
                self._done = True
                return None
            if self._skipped < self.offset:
                take = min(self.offset - self._skipped, len(batch))
                self._skipped += take
                batch = batch[take:]
                if not batch:
                    continue
            if self.count is not None:
                remaining = self.count - self._emitted
                if len(batch) > remaining:
                    batch = batch[:remaining]
            self._emitted += len(batch)
            if self.count is not None and self._emitted >= self.count:
                self._done = True
            if batch:
                return batch

    def label(self) -> str:
        return f"StreamingLimit {self.count} OFFSET {self.offset}"


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------

def explain_physical(plan: "PhysicalPlan | PhysicalOperator",
                     stats: ExecutionStats | None = None) -> str:
    """Multi-line, indented rendering of a physical plan.

    Nodes lowered with a catalog in hand carry the cost model's
    predictions and are annotated ``(estimated N rows, cost C)``.  With
    *stats* (an :class:`~repro.engine.stats.ExecutionStats` from a
    completed execution) each node instead shows estimated-vs-actual:
    ``(est N rows, actual rows=... batches=... loops=... time=...)`` —
    the ``EXPLAIN ANALYZE`` output, which makes estimator drift visible
    node by node.
    """
    root = plan.root if isinstance(plan, PhysicalPlan) else plan
    tagged = False
    stack = [root]
    while stack:
        node = stack.pop()
        if node.batch_format == "columnar":
            tagged = True
            break
        stack.extend(node.children())
        for sub in node.sublinks:
            stack.append(sub.plan)
    lines: list[str] = []
    _render(root, 0, lines, stats, tagged)
    return "\n".join(lines)


def _format_estimate(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.1f}"


def _render(node: PhysicalOperator, indent: int, lines: list[str],
            stats: ExecutionStats | None,
            tagged: bool = False) -> None:
    pad = "  " * indent
    text = pad + node.label()
    if tagged:
        # vectorized plans show each node's batch format so a regression
        # to the row path is visible at a glance
        text += " [columnar]" if node.batch_format == "columnar" \
            else " [rows]"
    estimated = node.est_rows
    if stats is not None:
        entry = stats.node_stats.get(id(node))
        prefix = "" if estimated is None else \
            f"est {_format_estimate(estimated)} rows, actual "
        if entry is not None:
            text += (f"  ({prefix}rows={entry.rows} "
                     f"batches={entry.batches} "
                     f"loops={entry.loops} time={entry.time_ms:.3f}ms "
                     f"self={entry.self_ms:.3f}ms)")
        else:
            text += f"  ({prefix}never executed)"
    elif estimated is not None:
        text += f"  (estimated {_format_estimate(estimated)} rows"
        if node.est_cost is not None:
            text += f", cost {_format_estimate(node.est_cost)}"
        text += ")"
    lines.append(text)
    if stats is not None:
        # exchange operators report their last fan-out per worker
        worker_stats = getattr(node, "worker_stats", None)
        if worker_stats:
            for worker, rows, seconds in worker_stats:
                lines.append(pad + f"  Worker {worker}: rows={rows} "
                             f"time={seconds * 1e3:.3f}ms")
    for sub in node.sublinks:
        lines.append(pad + "  " + sub.label)
        _render(sub.plan, indent + 2, lines, stats, tagged)
    for child in node.children():
        _render(child, indent + 1, lines, stats, tagged)
