"""Multi-writer commit benchmark (``python -m repro.bench --mvcc``).

One grid over **writer count x commit locking x table layout**, on a
durable engine with ``durability="commit"`` — the configuration where
the old global writer lock hurt most, because every commit paid its own
fsync inside the exclusive section:

* ``commit_locking="global"`` — every commit takes the commit
  barrier's write side: the pre-lock-manager behavior, kept in the
  engine precisely so this bench can price it;
* ``commit_locking="table"`` — commits lock only their conflict sets,
  so the *disjoint* layout (each writer owns its own table) validates,
  group-flushes and publishes in parallel, while the *contended*
  layout (all writers on one table) measures the first-committer-wins
  retry path under pressure.

Every (layout, writers) cell runs the same deterministic workload under
both locking modes and cross-checks the resulting tables
**bit-identical** (sorted row lists compared with ``==``) — the lock
manager is required to change throughput, never data.  The flusher's
batch counters are recorded per cell, so the committed JSON
(``BENCH_mvcc.json``) shows how many fsyncs the group commit actually
amortized.  The host's CPU count is recorded alongside: on a
single-core container the writer threads time-slice one core and only
the fsync batching can win, so the >= 2x disjoint-speedup gate arms on
>= 4 cores only (parity is gated everywhere).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass

from ..api import Engine, SessionConfig
from ..errors import ReproError

#: Concurrent writer settings per cell; 1 is the no-concurrency floor.
WRITER_SETTINGS = (1, 2, 4)
#: Autocommit INSERT statements (= commits) each writer issues.
COMMITS_PER_WRITER = 50
_MODES = ("global", "table")
_LAYOUTS = ("disjoint", "contended")


@dataclass
class MvccCell:
    """One (layout, writers) workload, measured under both lock modes."""

    layout: str               # "disjoint" or "contended"
    writers: int
    commits: int              # total commits per mode run
    seconds: dict[str, float]        # mode -> wall seconds
    flush_batches: dict[str, int]    # mode -> WAL batches flushed
    flushed_records: dict[str, int]  # mode -> commit records flushed
    parity_ok: bool           # sorted table rows identical across modes

    @property
    def commits_per_s(self) -> dict[str, float]:
        return {mode: (self.commits / secs if secs > 0 else float("inf"))
                for mode, secs in self.seconds.items()}

    @property
    def speedup(self) -> float:
        """Per-table locking vs the global-lock baseline."""
        if self.seconds["table"] == 0:
            return float("inf")
        return self.seconds["global"] / self.seconds["table"]

    @property
    def avg_batch(self) -> dict[str, float]:
        """Mean commit records per fsync batch (the amortization)."""
        return {mode: (self.flushed_records[mode] / batches
                       if (batches := self.flush_batches[mode]) else 0.0)
                for mode in self.flush_batches}

    def to_dict(self) -> dict:
        return {
            "layout": self.layout,
            "writers": self.writers,
            "commits": self.commits,
            "seconds": dict(self.seconds),
            "commits_per_s": self.commits_per_s,
            "flush_batches": dict(self.flush_batches),
            "flushed_records": dict(self.flushed_records),
            "avg_batch": self.avg_batch,
            "speedup": self.speedup,
            "parity_ok": self.parity_ok,
        }


@dataclass
class MvccBenchResult:
    """The full multi-writer grid."""

    commits_per_writer: int
    cpus: int                 # os.cpu_count() of the measuring host
    cells: list[MvccCell]

    @property
    def parity_ok(self) -> bool:
        return all(cell.parity_ok for cell in self.cells)

    @property
    def disjoint_speedup(self) -> float:
        """Table-locking speedup on the widest disjoint cell — the
        headline the >= 2x multi-core gate reads."""
        widest = max((cell for cell in self.cells
                      if cell.layout == "disjoint" and cell.writers > 1),
                     key=lambda cell: cell.writers, default=None)
        return float("nan") if widest is None else widest.speedup

    def to_dict(self) -> dict:
        return {
            "commits_per_writer": self.commits_per_writer,
            "cpus": self.cpus,
            "writer_settings": list(WRITER_SETTINGS),
            "parity_ok": self.parity_ok,
            "disjoint_speedup": self.disjoint_speedup,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _writer_rows(writer: int, commits: int) -> list[tuple]:
    """The deterministic rows writer *writer* inserts, one per commit —
    int, float and text columns so the parity check is type-diverse."""
    return [(writer, seq, seq * 0.5 + writer, f"w{writer}-c{seq}")
            for seq in range(commits)]


def _run_side(mode: str, writers: int, layout: str, commits: int
              ) -> tuple[float, dict[str, list], int, int]:
    """One cell under one locking mode: returns (seconds, sorted rows
    per table, flush batches, flushed records)."""
    with tempfile.TemporaryDirectory(prefix="repro-mvcc-") as tmp:
        engine = Engine(
            config=SessionConfig(durability="commit", commit_locking=mode,
                                 checkpoint_wal_mb=0),
            path=os.path.join(tmp, "db"))
        try:
            tables = [f"t{i}" for i in range(writers)] \
                if layout == "disjoint" else ["t0"] * writers
            setup = engine.connect()
            for table in sorted(set(tables)):
                setup.execute(f"CREATE TABLE {table} "
                              f"(w int, seq int, v float, tag text)")
            setup.close()
            errors: list[BaseException] = []
            barrier = threading.Barrier(writers + 1)

            def run_writer(writer: int, table: str) -> None:
                conn = engine.connect()
                try:
                    rows = _writer_rows(writer, commits)
                    barrier.wait()
                    for row in rows:
                        conn.insert(table, [row])   # one commit per row
                except ReproError as exc:
                    errors.append(exc)
                finally:
                    conn.close()

            threads = [threading.Thread(target=run_writer,
                                        args=(i, tables[i]))
                       for i in range(writers)]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            if errors:
                raise errors[0]
            rows = {table: sorted(engine.catalog.get(table).rows)
                    for table in set(tables)}
            storage = engine.storage
            assert storage is not None
            return (elapsed, rows, storage.flush_batches,
                    storage.flushed_records)
        finally:
            engine.close()


def run_mvcc_bench(commits: int = COMMITS_PER_WRITER,
                   verbose: bool = False) -> MvccBenchResult:
    """Run the multi-writer grid (see the module docstring)."""
    cells: list[MvccCell] = []
    for layout in _LAYOUTS:
        for writers in WRITER_SETTINGS:
            if layout == "contended" and writers == 1:
                continue            # identical to disjoint at one writer
            seconds: dict[str, float] = {}
            batches: dict[str, int] = {}
            records: dict[str, int] = {}
            tables: dict[str, dict[str, list]] = {}
            for mode in _MODES:
                elapsed, rows, flushed, count = _run_side(
                    mode, writers, layout, commits)
                seconds[mode] = elapsed
                tables[mode] = rows
                batches[mode] = flushed
                records[mode] = count
            cell = MvccCell(
                layout=layout, writers=writers, commits=writers * commits,
                seconds=seconds, flush_batches=batches,
                flushed_records=records,
                parity_ok=tables["global"] == tables["table"])
            cells.append(cell)
            if verbose:
                print(f"  {layout} x{writers}: "
                      f"{cell.commits_per_s['global']:.0f} -> "
                      f"{cell.commits_per_s['table']:.0f} commits/s "
                      f"({cell.speedup:.2f}x)")
    return MvccBenchResult(commits_per_writer=commits,
                           cpus=os.cpu_count() or 1, cells=cells)


def format_mvcc(result: MvccBenchResult) -> str:
    lines = [
        f"multi-writer commits, durability=commit "
        f"({result.commits_per_writer} commits/writer, "
        f"cpus={result.cpus})",
        f"{'layout':<11} {'writers':>7} {'global c/s':>11} "
        f"{'table c/s':>10} {'speedup':>8} {'batch':>6} {'parity':>7}",
    ]
    for cell in result.cells:
        lines.append(
            f"{cell.layout:<11} {cell.writers:>7} "
            f"{cell.commits_per_s['global']:>11.0f} "
            f"{cell.commits_per_s['table']:>10.0f} "
            f"{cell.speedup:>7.2f}x "
            f"{cell.avg_batch['table']:>6.1f} "
            f"{'ok' if cell.parity_ok else 'DIVERGED':>7}")
    lines.append(
        f"disjoint speedup at x{max(WRITER_SETTINGS)}: "
        f"{result.disjoint_speedup:.2f}x "
        f"(gated >= 2x on hosts with >= 4 cores)")
    return "\n".join(lines)
