"""Benchmark harness reproducing the paper's figures.

Run ``python -m repro.bench --help`` for the CLI; each figure also has a
pytest-benchmark counterpart under ``benchmarks/``.
"""

from .harness import BenchResult, Timeout, time_provenance_query
from .figures import (
    FIG6_SCALES,
    FIG7_INPUT_SIZES,
    FIG8_SUBLINK_SIZES,
    FIG9_BOTH_SIZES,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    format_table,
)

__all__ = [
    "BenchResult", "Timeout", "time_provenance_query",
    "FIG6_SCALES", "FIG7_INPUT_SIZES", "FIG8_SUBLINK_SIZES",
    "FIG9_BOTH_SIZES",
    "run_fig6", "run_fig7", "run_fig8", "run_fig9", "format_table",
]
