"""CLI for regenerating the paper's figures.

Examples::

    python -m repro.bench fig7                 # synthetic, vary |R1|
    python -m repro.bench fig6 --timeout 30    # TPC-H ladder
    python -m repro.bench all --instances 1    # everything, quick pass
    python -m repro.bench --smoke              # prepared-plan smoke check
"""

from __future__ import annotations

import argparse
import sys

from .figures import (
    format_table, run_fig6, run_fig7, run_fig8, run_fig9,
)

_RUNNERS = {
    "fig6": lambda args: run_fig6(
        instances=args.instances, timeout_s=args.timeout,
        seed=args.seed, verbose=args.verbose),
    "fig7": lambda args: run_fig7(
        instances=args.instances, timeout_s=args.timeout,
        seed=args.seed, verbose=args.verbose),
    "fig8": lambda args: run_fig8(
        instances=args.instances, timeout_s=args.timeout,
        seed=args.seed, verbose=args.verbose),
    "fig9": lambda args: run_fig9(
        instances=args.instances, timeout_s=args.timeout,
        seed=args.seed, verbose=args.verbose),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's experimental figures.")
    parser.add_argument(
        "figure", nargs="?", choices=[*_RUNNERS, "all"],
        help="which figure to regenerate")
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the smoke micro-benchmarks instead of a figure; exits "
             "non-zero if the cached-plan path is not at least 2x faster "
             "than per-call Database.sql(), if the pipelined engine is "
             "not at least 1.5x faster than the materializing baseline "
             "on the synthetic provenance workload, if the vectorized "
             "engine is not at least 2x faster than the pipelined one "
             "on the same workload, if the Unn plan "
             "stops hash-joining, if IndexNestedLoopJoin is not at "
             "least 2x faster than NestedLoopJoin on the indexed "
             "point-lookup join workload, if K sessions sharing one "
             "Engine do not deliver at least 2x the aggregate throughput "
             "of K sequential single-connection runs on the read-heavy "
             "mix, if reopening a checkpointed database from its "
             "snapshot is not at least 2x faster than rebuilding it "
             "from CSV + re-ANALYZE, if the parallel scan-aggregate "
             "workload never fans out, or (on hosts with at least 4 "
             "real cores) if 4 exchange workers are not at least 1.5x "
             "faster than the serial plan on it")
    parser.add_argument(
        "--engine", action="store_true",
        help="run the engine-comparison grid: the fig8/fig9 synthetic "
             "provenance workloads plus the uncorrelated TPC-H sublink "
             "templates, each prepared once and re-executed on the "
             "materializing, pipelined and vectorized engines; every "
             "cell cross-checks result parity and the committed "
             "BENCH_engine.json is regenerated from --json")
    parser.add_argument(
        "--engine-repeats", type=int, default=3, metavar="N",
        help="repeated executions per cell and engine for --engine "
             "(default 3, best of 3 rounds)")
    parser.add_argument(
        "--parallel", action="store_true",
        help="run the parallel-execution grid: the scan-aggregate "
             "workloads intra-query parallelism targets plus the "
             "fig8/fig9 and TPC-H provenance workloads, each measured "
             "serially and with 2 and 4 exchange workers; every cell "
             "cross-checks bit-identical results against the serial "
             "baseline and the committed BENCH_parallel.json is "
             "regenerated from --json (speedups are only meaningful "
             "on hosts with >= 2 real cores; the host CPU count is "
             "recorded in the JSON)")
    parser.add_argument(
        "--parallel-repeats", type=int, default=3, metavar="N",
        help="repeated executions per cell and worker setting for "
             "--parallel (default 3, best of 3 rounds)")
    parser.add_argument(
        "--mvcc", action="store_true",
        help="run the multi-writer commit grid: 1/2/4 writer threads "
             "doing autocommit INSERTs on a durability=commit engine, "
             "under the retired global commit lock and the per-table "
             "lock manager, over disjoint and contended table layouts; "
             "every cell cross-checks bit-identical tables across the "
             "two locking modes and the committed BENCH_mvcc.json is "
             "regenerated from --json (the >= 2x disjoint-speedup gate "
             "arms only on hosts with >= 4 real cores; the host CPU "
             "count is recorded in the JSON)")
    parser.add_argument(
        "--mvcc-commits", type=int, default=None, metavar="N",
        help="autocommit INSERTs per writer for --mvcc (default 50)")
    parser.add_argument(
        "--serve", action="store_true",
        help="run the network-serving load benchmark: boot the wire "
             "server on an ephemeral port, drive it with --clients "
             "concurrent repro.client connections, and report q/s plus "
             "p50/p99 latency; exits non-zero if served throughput "
             "drops below 0.5x the in-process baseline")
    parser.add_argument(
        "--clients", type=int, default=16, metavar="N",
        help="concurrent client connections for --serve (default 16)")
    parser.add_argument(
        "--duration", type=float, default=2.0, metavar="SECONDS",
        help="measured load window for --serve (default 2.0)")
    parser.add_argument(
        "--repeats", type=int, default=20, metavar="N",
        help="repeated executions for --smoke (default 20)")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="with --smoke, --serve or --mvcc, also write the results "
             "as JSON to PATH (uploaded as a CI artifact)")
    parser.add_argument(
        "--instances", type=int, default=3,
        metavar="N", help="random query instances per point (default 3)")
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-case budget, the paper's 6h cutoff rescaled (default 60)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--verbose", action="store_true",
                        help="print each point as it is measured")
    args = parser.parse_args(argv)

    if args.engine:
        if args.engine_repeats < 1:
            parser.error("--engine-repeats must be >= 1")
        from .engines import format_engine_bench, run_engine_bench
        result = run_engine_bench(repeats=args.engine_repeats,
                                  seed=args.seed, verbose=args.verbose)
        print("== engine comparison ==")
        print(format_engine_bench(result))
        if args.json:
            import json
            with open(args.json, "w") as handle:
                json.dump(result.to_dict(), handle, indent=2)
            print(f"wrote {args.json}")
        if result.vectorized_speedup < 1.0:
            print("FAIL: vectorized engine slower than pipelined on "
                  "the grid geomean")
            return 1
        print("ok: the vectorized engine wins the grid geomean")
        return 0

    if args.parallel:
        if args.parallel_repeats < 1:
            parser.error("--parallel-repeats must be >= 1")
        from .parallel import format_parallel_bench, run_parallel_bench
        result = run_parallel_bench(repeats=args.parallel_repeats,
                                    seed=args.seed, verbose=args.verbose)
        print("== parallel execution ==")
        print(format_parallel_bench(result))
        if args.json:
            import json
            with open(args.json, "w") as handle:
                json.dump(result.to_dict(), handle, indent=2)
            print(f"wrote {args.json}")
        if result.exchanged_cells < 1:
            print("FAIL: no cell fanned out through a Gather")
            return 1
        print("ok: the exchange operators fan out and every parallel "
              "run matched its serial baseline bit for bit")
        return 0

    if args.mvcc:
        if args.mvcc_commits is not None and args.mvcc_commits < 1:
            parser.error("--mvcc-commits must be >= 1")
        from .mvcc import COMMITS_PER_WRITER, format_mvcc, run_mvcc_bench
        result = run_mvcc_bench(
            commits=args.mvcc_commits or COMMITS_PER_WRITER,
            verbose=args.verbose)
        print("== multi-writer commits ==")
        print(format_mvcc(result))
        if args.json:
            import json
            with open(args.json, "w") as handle:
                json.dump(result.to_dict(), handle, indent=2)
            print(f"wrote {args.json}")
        if not result.parity_ok:
            print("FAIL: table contents diverged between global and "
                  "per-table commit locking")
            return 1
        if result.cpus >= 4 and result.disjoint_speedup < 2.0:
            print("FAIL: disjoint multi-writer speedup below the 2x "
                  "floor on a >= 4-core host")
            return 1
        print("ok: per-table commit locking matches the global lock "
              "bit for bit" + (
                  " and clears the 2x disjoint-writer floor"
                  if result.cpus >= 4 else
                  " (single-core host: speedup reported, not gated)"))
        return 0

    if args.serve:
        if args.clients < 1:
            parser.error("--clients must be >= 1")
        if args.duration <= 0:
            parser.error("--duration must be > 0")
        from .serve import format_serve, run_serve_bench
        result = run_serve_bench(clients=args.clients,
                                 duration=args.duration)
        print("== serving load benchmark ==")
        print(format_serve(result))
        if args.json:
            import json
            with open(args.json, "w") as handle:
                json.dump(result.to_dict(), handle, indent=2)
            print(f"wrote {args.json}")
        if result.ratio < 0.5:
            print("FAIL: served throughput below 0.5x of the "
                  "in-process baseline")
            return 1
        print("ok: the network layer keeps at least half of "
              "in-process throughput")
        return 0

    if args.smoke:
        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        from .smoke import format_smoke, run_smoke
        result = run_smoke(repeats=args.repeats)
        print("== smoke benchmarks ==")
        print(format_smoke(result))
        if args.json:
            import json
            with open(args.json, "w") as handle:
                json.dump(result.to_dict(), handle, indent=2)
            print(f"wrote {args.json}")
        if result.cache_hits < args.repeats:
            print("FAIL: prepared executions missed the plan cache")
            return 1
        if result.speedup < 2.0:
            print("FAIL: cached-plan speedup below the 2x floor")
            return 1
        if result.engine_hash_joins < 1:
            print("FAIL: Unn-strategy equi-join no longer hash-joins")
            return 1
        if result.engine_speedup < 1.5:
            print("FAIL: pipelined-engine speedup below the 1.5x floor")
            return 1
        if result.vectorized_speedup < 2.0:
            print("FAIL: vectorized-engine speedup over pipelined below "
                  "the 2x floor")
            return 1
        if result.index_join_speedup < 2.0:
            print("FAIL: IndexNestedLoopJoin speedup over NestedLoopJoin "
                  "below the 2x floor")
            return 1
        if result.concurrency_speedup < 2.0:
            print("FAIL: shared-Engine concurrent throughput below the "
                  "2x floor over sequential single-connection runs")
            return 1
        if result.reopen_speedup < 2.0:
            print("FAIL: snapshot reopen speedup over CSV rebuild + "
                  "re-ANALYZE below the 2x floor")
            return 1
        if result.parallel_fanouts < 1:
            print("FAIL: the parallel scan-aggregate workload never "
                  "fanned out through a Gather")
            return 1
        if result.parallel_cpus >= 4 and result.parallel_speedup < 1.5:
            print("FAIL: parallel scan-aggregate speedup below the "
                  "1.5x floor on a >= 4-core host")
            return 1
        print("ok: plan cache, pipelined and vectorized engines, index "
              "joins, the shared Engine, snapshot reopen and parallel "
              "execution deliver the expected speedups")
        return 0

    if args.figure is None:
        parser.error("a figure (or --smoke) is required")
    figures = list(_RUNNERS) if args.figure == "all" else [args.figure]
    for figure in figures:
        print(f"== {figure} ==", flush=True)
        rows = _RUNNERS[figure](args)
        print(format_table(rows))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
