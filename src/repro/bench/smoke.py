"""Smoke micro-benchmarks (``python -m repro.bench --smoke``).

Four checks, all run by CI as regression gates:

* **Plan cache** — the same provenance query executed two ways over one
  catalog: the legacy per-call path (``Database.sql()`` re-parses,
  re-analyzes, re-rewrites, re-optimizes and re-lowers on every call)
  versus a :class:`~repro.api.PreparedStatement` planned once and
  re-executed through the plan cache.  The speedup is what the plan
  cache buys on a repeated query.

* **Engine** — all three execution engines on the *synthetic
  provenance workload* (the paper's Section 4.2.2 q1 under the Unn
  strategy, which plans to the hash equi-join of Figures 7-9): the
  original materializing interpreter, the pipelined row-batch engine
  and the columnar vectorized engine.  All run the same cached physical
  plan shape, so the ratios isolate execution: batched pulls and
  batch-compiled expressions against per-row tree interpretation, and
  whole-column kernels over selection vectors against per-row batch
  loops.  Two gates: pipelined >= 1.5x over materializing, and
  vectorized >= 2x over pipelined.  The check also asserts the Unn
  plan still picks a hash join — the paper's Figures 7-9 behaviour.

* **Concurrency** — the shared-engine payoff: K threads, each with its
  own session from one :class:`~repro.api.engine.Engine`, run a
  read-heavy mix of distinct provenance queries against shared tiny
  tables (planning-bound, like the plan-cache check) versus the same
  total work as K *sequential* single-connection runs on private
  engines, each of which must plan the whole mix from a cold cache.
  The gated ratio — shared-engine aggregate throughput at least 2x the
  sequential baseline — is what the engine-wide plan cache plus
  lock-free snapshot reads buy a multi-session deployment.

* **Durability** — the payoff of the binary snapshot: a database
  (typed table, two secondary indexes, ANALYZE statistics) is
  checkpointed to a database directory and also exported as CSV; the
  gated ratio compares reopening from the snapshot
  (``connect(path=...)`` — columnar decode + bulk index rebuild +
  stored statistics) against rebuilding the same state cold from the
  CSV (parse + insert + CREATE INDEX + re-ANALYZE).  Reopen must stay
  at least 2x faster, or restarts of a production deployment would be
  better served by CSV reload than by the storage subsystem.

* **Parallel** — a scan-aggregate workload (grouped count/sum over a
  hash-partitioned table big enough to clear the fan-out threshold)
  executed serially and with four exchange workers.  Parity is gated
  unconditionally — the parallel rows must be *bit-identical* to the
  serial ones, and the plan must actually fan out through a Gather —
  but the >= 1.5x speedup gate only applies when the host has at least
  four real cores; on smaller hosts the worker processes time-slice
  the same cores and the ratio is recorded without being gated.

* **Indexes** — an indexed point-lookup workload (prepared
  ``k = ?`` lookups against a unique hash index versus the same session
  with ``use_indexes=False``, which plans the filtered sequential scan)
  and a small-probe/big-build equi-join lowered twice from one logical
  plan: once cost-based (which must choose
  :class:`~repro.engine.physical.IndexNestedLoopJoin`) and once with the
  ``force_nested_loop`` lowering hook.  The gated ratio —
  IndexNestedLoopJoin at least 2x over NestedLoopJoin on identical data
  — is the floor under the index subsystem's reason to exist.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass

from ..api import Engine, connect
from ..db import Database
from ..synthetic import SyntheticConfig, load_synthetic, q1_sql

#: Small Figure-3-shaped relations: the plan-cache workload is
#: deliberately planning-bound (parse + analyze + rewrite + optimize
#: dominates), which is exactly the repeated-query profile plan caching
#: exists for.
_SETUP_ROWS = 6

_QUERY = ("SELECT PROVENANCE r.a, r.b FROM r "
          "WHERE a = ANY (SELECT c FROM s WHERE c < ?) "
          "AND EXISTS (SELECT c FROM s WHERE s.d < 90)")
_LEGACY_QUERY = _QUERY.replace("?", "40")

#: The engine workload is execution-bound: |R1| = |R2| = 2000 synthetic
#: rows, q1 (equality ANY -> Unn-eligible) with provenance under Unn.
_ENGINE_SIZE = 2000

#: Index workload sizes: a big indexed table probed by a small outer —
#: the shape where an index probe per outer row beats building a hash
#: table (and demolishes a nested loop).
_INDEX_TABLE_ROWS = 6000
_INDEX_PROBE_ROWS = 48
_INDEX_LOOKUPS = 300

#: Concurrency workload: K sessions over one shared engine vs K cold
#: sequential single-connection runs, on a planning-bound mix of
#: distinct provenance queries (small data, many distinct plans — the
#: repeated-query profile an engine-wide plan cache exists for).
_CONCURRENCY_THREADS = 4
_CONCURRENCY_ROUNDS = 1
_CONCURRENCY_DISTINCT = 20

#: Durability workload: rows in the checkpointed/reloaded table.  Big
#: enough that per-row costs dominate fixed open/parse overheads.
_DURABLE_ROWS = 12000

#: Parallel workload: rows in the partitioned scan-aggregate table.
#: Big enough that per-row aggregation dominates the exchange overhead
#: (task dispatch + partial-result pickling) on a multi-core host.
_PARALLEL_ROWS = 60000
_PARALLEL_GROUPS = 64
_PARALLEL_WORKERS = 4


@dataclass
class SmokeResult:
    """Outcome of the three smoke micro-benchmarks."""

    repeats: int
    legacy_seconds: float        # total, Database.sql() per call
    prepared_seconds: float      # total, PreparedStatement.execute per call
    cache_hits: int
    rows: int
    engine_repeats: int
    materializing_seconds: float  # total, materializing engine per call
    pipelined_seconds: float      # total, pipelined engine per call
    vectorized_seconds: float     # total, vectorized engine per call
    engine_rows: int
    engine_hash_joins: int        # hash joins in the pipelined Unn run
    index_lookups: int            # point lookups per timed side
    seq_lookup_seconds: float     # total, use_indexes=False (SeqScan)
    index_lookup_seconds: float   # total, IndexScan
    index_join_rows: int          # rows of the probe/build join
    nlj_seconds: float            # total, forced NestedLoopJoin
    inlj_seconds: float           # total, cost-chosen IndexNestedLoopJoin
    concurrency_threads: int      # K sessions / sequential runs
    concurrency_queries: int      # total statements per side
    sequential_seconds: float     # K cold single-connection runs, serial
    concurrent_seconds: float     # K threads sharing one Engine
    durable_rows: int             # rows in the durability workload
    csv_reload_seconds: float     # cold CSV rebuild + index + ANALYZE
    snapshot_open_seconds: float  # connect(path=...) on the checkpoint
    parallel_rows: int            # rows in the parallel workload table
    parallel_cpus: int            # os.cpu_count() of the measuring host
    parallel_fanouts: int         # Gather fan-outs in the parallel run
    serial_agg_seconds: float     # total, max_parallel_workers=0
    parallel_agg_seconds: float   # total, four exchange workers

    @property
    def speedup(self) -> float:
        """Plan-cache speedup: legacy per-call path vs prepared."""
        if self.prepared_seconds == 0:
            return float("inf")
        return self.legacy_seconds / self.prepared_seconds

    @property
    def engine_speedup(self) -> float:
        """Pipelined engine vs the materializing baseline."""
        if self.pipelined_seconds == 0:
            return float("inf")
        return self.materializing_seconds / self.pipelined_seconds

    @property
    def vectorized_speedup(self) -> float:
        """Vectorized engine vs the pipelined row-batch engine."""
        if self.vectorized_seconds == 0:
            return float("inf")
        return self.pipelined_seconds / self.vectorized_seconds

    @property
    def index_lookup_speedup(self) -> float:
        """Indexed point lookups vs the sequential-scan plan."""
        if self.index_lookup_seconds == 0:
            return float("inf")
        return self.seq_lookup_seconds / self.index_lookup_seconds

    @property
    def index_join_speedup(self) -> float:
        """IndexNestedLoopJoin vs NestedLoopJoin on identical inputs."""
        if self.inlj_seconds == 0:
            return float("inf")
        return self.nlj_seconds / self.inlj_seconds

    @property
    def concurrency_speedup(self) -> float:
        """Aggregate throughput of K threads sharing one Engine vs K
        sequential cold single-connection runs (same total work)."""
        if self.concurrent_seconds == 0:
            return float("inf")
        return self.sequential_seconds / self.concurrent_seconds

    @property
    def reopen_speedup(self) -> float:
        """Snapshot reopen vs rebuilding from CSV + re-ANALYZE."""
        if self.snapshot_open_seconds == 0:
            return float("inf")
        return self.csv_reload_seconds / self.snapshot_open_seconds

    @property
    def parallel_speedup(self) -> float:
        """Four exchange workers vs serial on the scan-aggregate
        workload (gated only on hosts with >= 4 real cores)."""
        if self.parallel_agg_seconds == 0:
            return float("inf")
        return self.serial_agg_seconds / self.parallel_agg_seconds

    def to_dict(self) -> dict:
        """JSON-friendly form (uploaded as a CI artifact so BENCH_*
        trajectories are comparable across PRs)."""
        data = asdict(self)
        data["speedup"] = self.speedup
        data["engine_speedup"] = self.engine_speedup
        data["vectorized_speedup"] = self.vectorized_speedup
        data["index_lookup_speedup"] = self.index_lookup_speedup
        data["index_join_speedup"] = self.index_join_speedup
        data["concurrency_speedup"] = self.concurrency_speedup
        data["reopen_speedup"] = self.reopen_speedup
        data["parallel_speedup"] = self.parallel_speedup
        return data


def _populate(session) -> None:
    session.execute_script("""
        CREATE TABLE r (a int, b int);
        CREATE TABLE s (c int, d int);
    """)
    session.insert(
        "r", [(i % 50, i % 7) for i in range(_SETUP_ROWS)])
    session.insert(
        "s", [(i % 45, i) for i in range(_SETUP_ROWS)])


def _run_plan_cache(repeats: int) -> tuple[float, float, int, int]:
    conn = connect()
    _populate(conn)
    db = Database(conn)   # same catalog, legacy uncached path

    # Warm both paths once so first-call effects are excluded.
    baseline = db.sql(_LEGACY_QUERY)
    statement = conn.prepare(_QUERY)
    prepared_rows = statement.execute((40,))
    if sorted(prepared_rows.rows) != sorted(baseline.rows):
        raise AssertionError(
            "prepared path disagrees with the legacy path")

    start = time.perf_counter()
    for _ in range(repeats):
        db.sql(_LEGACY_QUERY)
    legacy_seconds = time.perf_counter() - start

    hits_before = conn.plan_cache.hits
    start = time.perf_counter()
    for _ in range(repeats):
        statement.execute((40,)).rows     # drain: results stream lazily
    prepared_seconds = time.perf_counter() - start

    return (legacy_seconds, prepared_seconds,
            conn.plan_cache.hits - hits_before, len(prepared_rows.rows))


def _run_engines(repeats: int, size: int = _ENGINE_SIZE
                 ) -> tuple[float, float, float, int, int]:
    db = load_synthetic(SyntheticConfig(size, size, seed=0))
    sql = "SELECT PROVENANCE " + q1_sql(size, size, seed=0)[len("SELECT "):]

    timings: dict[str, float] = {}
    results: dict[str, Counter] = {}
    hash_joins = 0
    for engine in ("materializing", "pipelined", "vectorized"):
        conn = connect(engine=engine, catalog=db.catalog)
        statement = conn.prepare(sql, strategy="unn")
        relation = statement.execute(())    # warm: plan cached, table hot
        results[engine] = Counter(relation.rows)
        rounds = []
        for _ in range(3):                  # best-of-3 rounds: noise-robust
            start = time.perf_counter()
            for _ in range(repeats):
                statement.execute(()).rows   # drain the streaming result
            rounds.append(time.perf_counter() - start)
        timings[engine] = min(rounds)
        if engine == "pipelined":
            hash_joins = conn.last_stats.hash_joins
        if engine == "vectorized" \
                and conn.last_stats.row_fallback_nodes:
            raise AssertionError(
                "the Unn workload no longer vectorizes end to end")
        conn.close()
    if not (results["vectorized"] == results["pipelined"]
            == results["materializing"]):
        raise AssertionError(
            "the three engines disagree on the Unn workload")
    return (timings["materializing"], timings["pipelined"],
            timings["vectorized"], sum(results["pipelined"].values()),
            hash_joins)


def _index_session():
    """A session with the big indexed table + small probe table loaded."""
    conn = connect()
    conn.execute_script("""
        CREATE TABLE big (k int, v int);
        CREATE TABLE probe (k int);
    """)
    conn.insert("big", [(i, i % 97) for i in range(_INDEX_TABLE_ROWS)])
    step = max(_INDEX_TABLE_ROWS // _INDEX_PROBE_ROWS, 1)
    conn.insert("probe", [(i * step,) for i in range(_INDEX_PROBE_ROWS)])
    conn.execute("CREATE UNIQUE INDEX big_k ON big (k)")
    conn.execute("ANALYZE")
    return conn


def _run_index_lookups(conn, lookups: int) -> tuple[float, float]:
    """Prepared point lookups: IndexScan vs the use_indexes=False plan."""
    sql = "SELECT v FROM big WHERE k = ?"
    seqscan = connect(use_indexes=False, catalog=conn.catalog)
    timings: dict[str, float] = {}
    for label, session in (("index", conn), ("seq", seqscan)):
        statement = session.prepare(sql)
        reference = statement.execute((17,))   # warm: plan cached
        if reference.rows != [(17 % 97,)]:
            raise AssertionError(f"{label} point lookup returned "
                                 f"{reference.rows}")
        keys = [(i * 37) % _INDEX_TABLE_ROWS for i in range(lookups)]
        start = time.perf_counter()
        for key in keys:
            statement.execute((key,)).rows   # drain the streaming result
        timings[label] = time.perf_counter() - start
    text = conn.explain_physical(sql.replace("?", "17"))
    if "IndexScan" not in text:
        raise AssertionError("indexed point lookup did not plan an "
                             "IndexScan")
    seqscan.close()
    return timings["seq"], timings["index"]


def _run_index_join(conn, repeats: int) -> tuple[float, float, int]:
    """One logical probe/build join, lowered twice: the cost-based plan
    (must pick IndexNestedLoopJoin) vs the forced NestedLoopJoin."""
    from ..engine import Executor
    from ..engine.lowering import lower_plan
    from ..engine.optimizer import optimize
    from ..engine.physical import explain_physical

    sql = "SELECT p.k, b.v FROM probe p JOIN big b ON p.k = b.k"
    logical = optimize(conn.plan(sql), conn.catalog)
    inlj_plan = lower_plan(logical, conn.catalog)
    nlj_plan = lower_plan(logical, conn.catalog, force_nested_loop=True)
    if "IndexNestedLoopJoin" not in explain_physical(inlj_plan):
        raise AssertionError(
            "cost-based lowering did not choose IndexNestedLoopJoin for "
            "the small-probe/big-build join")
    if "IndexNestedLoopJoin" in explain_physical(nlj_plan):
        raise AssertionError("force_nested_loop hook produced an index "
                             "join")

    timings: dict[str, float] = {}
    results: dict[str, Counter] = {}
    for label, plan in (("inlj", inlj_plan), ("nlj", nlj_plan)):
        executor = Executor(conn.catalog, optimize=False,
                            config=conn.config)
        results[label] = Counter(
            executor.execute_physical(plan).rows)    # warm
        start = time.perf_counter()
        for _ in range(repeats):
            executor.execute_physical(plan)
        timings[label] = time.perf_counter() - start
    if results["inlj"] != results["nlj"]:
        raise AssertionError(
            "IndexNestedLoopJoin disagrees with NestedLoopJoin")
    return (timings["nlj"], timings["inlj"],
            sum(results["inlj"].values()))


def _concurrency_mix(count: int = _CONCURRENCY_DISTINCT) -> list[str]:
    """Distinct provenance queries (distinct constants force distinct
    plan-cache entries) over the tiny plan-cache tables."""
    return [
        ("SELECT PROVENANCE r.a, r.b FROM r "
         f"WHERE a = ANY (SELECT c FROM s WHERE c < {30 + i}) "
         f"AND EXISTS (SELECT c FROM s WHERE s.d < {80 + i})")
        for i in range(count)
    ]


def _run_mix(conn, queries: list[str], rounds: int) -> int:
    rows = 0
    for _ in range(rounds):
        for sql in queries:
            rows += len(conn.execute(sql).rows)   # drain the stream
    return rows


def _sequential_pass(threads: int, queries: list[str],
                     rounds: int) -> tuple[float, int]:
    """K independent single-connection runs, each on a private engine
    with a cold plan cache (population untimed)."""
    sessions = []
    for _ in range(threads):
        conn = connect()
        _populate(conn)
        sessions.append(conn)
    start = time.perf_counter()
    rows = sum(_run_mix(conn, queries, rounds) for conn in sessions)
    elapsed = time.perf_counter() - start
    for conn in sessions:
        conn.close()
    return elapsed, rows


def _concurrent_pass(threads: int, queries: list[str],
                     rounds: int) -> tuple[float, int]:
    """K threads sharing one freshly seeded Engine: the mix is planned
    once engine-wide; every other session's execution is a plan-cache
    hit on a lock-free snapshot."""
    engine = Engine()
    seeder = engine.connect()
    _populate(seeder)
    workers = [engine.connect() for _ in range(threads)]
    barrier = threading.Barrier(threads)

    def work(conn) -> int:
        barrier.wait()
        return _run_mix(conn, queries, rounds)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        start = time.perf_counter()
        futures = [pool.submit(work, conn) for conn in workers]
        rows = sum(future.result() for future in futures)
        elapsed = time.perf_counter() - start
    engine.close()
    return elapsed, rows


def _run_concurrency(threads: int = _CONCURRENCY_THREADS,
                     rounds: int = _CONCURRENCY_ROUNDS
                     ) -> tuple[int, int, float, float]:
    """K threads sharing one Engine vs K sequential cold runs.

    Best-of-2 per side (fresh cold state each pass) so one unlucky
    scheduling blip cannot fail the CI gate.
    """
    queries = _concurrency_mix()
    sequential_seconds = float("inf")
    concurrent_seconds = float("inf")
    sequential_rows = concurrent_rows = 0
    for _ in range(2):
        elapsed, sequential_rows = _sequential_pass(threads, queries,
                                                    rounds)
        sequential_seconds = min(sequential_seconds, elapsed)
        elapsed, concurrent_rows = _concurrent_pass(threads, queries,
                                                    rounds)
        concurrent_seconds = min(concurrent_seconds, elapsed)
    if concurrent_rows != sequential_rows:
        raise AssertionError(
            f"shared-engine sessions returned {concurrent_rows} rows, "
            f"sequential baseline {sequential_rows}")
    total = threads * rounds * len(queries)
    return threads, total, sequential_seconds, concurrent_seconds


_DURABLE_DDL = "CREATE TABLE events (id int, grp int, val float, note text)"
_DURABLE_INDEXES = (
    "CREATE UNIQUE INDEX events_id ON events (id)",
    "CREATE INDEX events_grp ON events (grp) USING sorted",
)


def _durable_rows(count: int) -> list[tuple]:
    return [(i, i % 53, (i % 97) * 0.5, f"note-{i % 11}")
            for i in range(count)]


def _run_durability(rows_n: int = _DURABLE_ROWS
                    ) -> tuple[int, float, float]:
    """Checkpointed-snapshot reopen vs cold CSV rebuild (best of 3)."""
    from ..io import dump_csv, load_csv

    base = tempfile.mkdtemp(prefix="repro-smoke-")
    try:
        dbdir = os.path.join(base, "db")
        csv_path = os.path.join(base, "events.csv")
        seed = connect(path=dbdir)
        seed.execute(_DURABLE_DDL)
        seed.insert("events", _durable_rows(rows_n))
        for ddl in _DURABLE_INDEXES:
            seed.execute(ddl)
        seed.execute("ANALYZE")
        dump_csv(seed.catalog.get("events"), csv_path)
        seed.execute("CHECKPOINT")
        expected = Counter(seed.execute("SELECT * FROM events").rows)
        seed.close()

        def rebuild_from_csv():
            conn = connect()
            conn.execute(_DURABLE_DDL)
            load_csv(Database(conn), "events", csv_path)
            for ddl in _DURABLE_INDEXES:
                conn.execute(ddl)
            conn.execute("ANALYZE")
            return conn

        def reopen_snapshot():
            return connect(path=dbdir)

        timings: dict[str, float] = {}
        for label, build in (("csv", rebuild_from_csv),
                             ("snapshot", reopen_snapshot)):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                conn = build()
                best = min(best, time.perf_counter() - start)
                if Counter(conn.execute(
                        "SELECT * FROM events").rows) != expected:
                    raise AssertionError(
                        f"{label} rebuild disagrees with the "
                        f"checkpointed database")
                if sorted(conn.catalog.index_names()) != \
                        ["events_grp", "events_id"]:
                    raise AssertionError(f"{label} rebuild lost indexes")
                if conn.catalog.stats.get("events") is None:
                    raise AssertionError(
                        f"{label} rebuild lost statistics")
                conn.close()
            timings[label] = best
        return rows_n, timings["csv"], timings["snapshot"]
    finally:
        shutil.rmtree(base, ignore_errors=True)


def _run_parallel(rows_n: int = _PARALLEL_ROWS,
                  repeats: int = 3) -> tuple[int, int, int, float, float]:
    """Grouped scan-aggregate over a hash-partitioned table: serial vs
    four exchange workers on a shared catalog (best of 3).  Parallel
    rows must be bit-identical to serial; the plan must fan out."""
    seed = connect()
    seed.execute(f"CREATE TABLE events (grp int, val int) "
                 f"PARTITION BY HASH(grp) "
                 f"PARTITIONS {_PARALLEL_WORKERS}")
    seed.insert("events", [((i * 7919) % _PARALLEL_GROUPS, i % 1000)
                           for i in range(rows_n)])
    seed.execute("ANALYZE")
    catalog = seed.catalog
    seed.close()

    sql = ("SELECT grp, count(*) AS n, sum(val) AS s "
           "FROM events GROUP BY grp")
    timings: dict[str, float] = {}
    results: dict[str, list] = {}
    fanouts = 0
    for label, workers in (("serial", 0), ("parallel", _PARALLEL_WORKERS)):
        conn = connect(catalog=catalog, max_parallel_workers=workers,
                       parallel_threshold=1000)
        statement = conn.prepare(sql)
        results[label] = statement.execute(()).rows   # warm pool + blobs
        if label == "parallel":
            fanouts = conn.last_stats.parallel_fanouts
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(repeats):
                statement.execute(()).rows   # drain the stream
            best = min(best, time.perf_counter() - start)
        timings[label] = best
        conn.close()
    if results["parallel"] != results["serial"]:
        raise AssertionError(
            "parallel scan-aggregate is not bit-identical to serial")
    return (rows_n, os.cpu_count() or 1, fanouts,
            timings["serial"], timings["parallel"])


def _run_indexes(repeats: int,
                 lookups: int = _INDEX_LOOKUPS
                 ) -> tuple[int, float, float, int, float, float]:
    conn = _index_session()
    seq_seconds, index_seconds = _run_index_lookups(conn, lookups)
    nlj_seconds, inlj_seconds, join_rows = _run_index_join(conn, repeats)
    conn.close()
    return (lookups, seq_seconds, index_seconds, join_rows, nlj_seconds,
            inlj_seconds)


def run_smoke(repeats: int = 20, engine_repeats: int = 5) -> SmokeResult:
    """Run the micro-benchmarks; see the module docstring."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if engine_repeats < 1:
        raise ValueError(
            f"engine_repeats must be >= 1, got {engine_repeats}")
    legacy_seconds, prepared_seconds, cache_hits, rows = \
        _run_plan_cache(repeats)
    (materializing_seconds, pipelined_seconds, vectorized_seconds,
     engine_rows, hash_joins) = _run_engines(engine_repeats)
    (index_lookups, seq_lookup_seconds, index_lookup_seconds,
     index_join_rows, nlj_seconds, inlj_seconds) = \
        _run_indexes(engine_repeats)
    (concurrency_threads, concurrency_queries, sequential_seconds,
     concurrent_seconds) = _run_concurrency()
    durable_rows, csv_reload_seconds, snapshot_open_seconds = \
        _run_durability()
    (parallel_rows, parallel_cpus, parallel_fanouts,
     serial_agg_seconds, parallel_agg_seconds) = _run_parallel()
    return SmokeResult(
        repeats=repeats,
        legacy_seconds=legacy_seconds,
        prepared_seconds=prepared_seconds,
        cache_hits=cache_hits,
        rows=rows,
        engine_repeats=engine_repeats,
        materializing_seconds=materializing_seconds,
        pipelined_seconds=pipelined_seconds,
        vectorized_seconds=vectorized_seconds,
        engine_rows=engine_rows,
        engine_hash_joins=hash_joins,
        index_lookups=index_lookups,
        seq_lookup_seconds=seq_lookup_seconds,
        index_lookup_seconds=index_lookup_seconds,
        index_join_rows=index_join_rows,
        nlj_seconds=nlj_seconds,
        inlj_seconds=inlj_seconds,
        concurrency_threads=concurrency_threads,
        concurrency_queries=concurrency_queries,
        sequential_seconds=sequential_seconds,
        concurrent_seconds=concurrent_seconds,
        durable_rows=durable_rows,
        csv_reload_seconds=csv_reload_seconds,
        snapshot_open_seconds=snapshot_open_seconds,
        parallel_rows=parallel_rows,
        parallel_cpus=parallel_cpus,
        parallel_fanouts=parallel_fanouts,
        serial_agg_seconds=serial_agg_seconds,
        parallel_agg_seconds=parallel_agg_seconds,
    )


def format_smoke(result: SmokeResult) -> str:
    per_legacy = result.legacy_seconds / result.repeats * 1000
    per_prepared = result.prepared_seconds / result.repeats * 1000
    per_materializing = \
        result.materializing_seconds / result.engine_repeats * 1000
    per_pipelined = result.pipelined_seconds / result.engine_repeats * 1000
    per_vectorized = \
        result.vectorized_seconds / result.engine_repeats * 1000
    return "\n".join([
        "-- plan cache (repeated provenance query) --",
        f"repeats                  {result.repeats}",
        f"result rows              {result.rows}",
        f"plan-cache hits          {result.cache_hits}",
        f"Database.sql() per call  {per_legacy:8.3f} ms",
        f"prepared per call        {per_prepared:8.3f} ms",
        f"speedup                  {result.speedup:8.1f}x",
        "-- engine (synthetic q1 provenance, Unn) --",
        f"repeats                  {result.engine_repeats}",
        f"result rows              {result.engine_rows}",
        f"hash joins (Unn plan)    {result.engine_hash_joins}",
        f"materializing per call   {per_materializing:8.3f} ms",
        f"pipelined per call       {per_pipelined:8.3f} ms",
        f"vectorized per call      {per_vectorized:8.3f} ms",
        f"engine speedup           {result.engine_speedup:8.1f}x",
        f"vectorized speedup       {result.vectorized_speedup:8.1f}x",
        "-- indexes (point lookups + probe/build join) --",
        f"point lookups            {result.index_lookups}",
        f"seqscan lookups total    {result.seq_lookup_seconds * 1000:8.3f} ms",
        f"indexed lookups total    {result.index_lookup_seconds * 1000:8.3f} ms",
        f"lookup speedup           {result.index_lookup_speedup:8.1f}x",
        f"join result rows         {result.index_join_rows}",
        f"NestedLoopJoin per call  "
        f"{result.nlj_seconds / result.engine_repeats * 1000:8.3f} ms",
        f"IndexNLJoin per call     "
        f"{result.inlj_seconds / result.engine_repeats * 1000:8.3f} ms",
        f"index join speedup       {result.index_join_speedup:8.1f}x",
        "-- concurrency (shared Engine vs sequential runs) --",
        f"sessions / threads       {result.concurrency_threads}",
        f"statements per side      {result.concurrency_queries}",
        f"sequential total         "
        f"{result.sequential_seconds * 1000:8.3f} ms",
        f"shared-engine total      "
        f"{result.concurrent_seconds * 1000:8.3f} ms",
        f"concurrency speedup      {result.concurrency_speedup:8.1f}x",
        "-- durability (snapshot reopen vs CSV rebuild) --",
        f"table rows               {result.durable_rows}",
        f"CSV rebuild + ANALYZE    "
        f"{result.csv_reload_seconds * 1000:8.3f} ms",
        f"snapshot reopen          "
        f"{result.snapshot_open_seconds * 1000:8.3f} ms",
        f"reopen speedup           {result.reopen_speedup:8.1f}x",
        "-- parallel (scan-aggregate, 4 exchange workers) --",
        f"table rows               {result.parallel_rows}",
        f"host cpus                {result.parallel_cpus}",
        f"Gather fan-outs          {result.parallel_fanouts}",
        f"serial total             "
        f"{result.serial_agg_seconds * 1000:8.3f} ms",
        f"parallel total           "
        f"{result.parallel_agg_seconds * 1000:8.3f} ms",
        f"parallel speedup         {result.parallel_speedup:8.1f}x"
        + ("" if result.parallel_cpus >= 4
           else "  (not gated: < 4 cores)"),
    ])
