"""Prepared-statement micro-benchmark (``python -m repro.bench --smoke``).

Times the same provenance query executed two ways over one catalog:

* the legacy per-call path — ``Database.sql()`` re-parses, re-analyzes,
  re-rewrites and re-optimizes on every call;
* the session path — a :class:`~repro.api.PreparedStatement` planned once,
  then re-executed through the plan cache.

The interesting number is the speedup: it is what the plan cache buys on
a repeated query, and CI runs this as a smoke check so regressions in the
cached-plan path are visible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..api import connect
from ..db import Database

#: Small Figure-3-shaped relations: the workload is deliberately
#: planning-bound (parse + analyze + rewrite + optimize dominates), which
#: is exactly the repeated-query profile plan caching exists for.
_SETUP_ROWS = 6

_QUERY = ("SELECT PROVENANCE r.a, r.b FROM r "
          "WHERE a = ANY (SELECT c FROM s WHERE c < ?) "
          "AND EXISTS (SELECT c FROM s WHERE s.d < 90)")
_LEGACY_QUERY = _QUERY.replace("?", "40")


@dataclass
class SmokeResult:
    """Outcome of the repeated-query micro-benchmark."""

    repeats: int
    legacy_seconds: float     # total, Database.sql() per call
    prepared_seconds: float   # total, PreparedStatement.execute per call
    cache_hits: int
    rows: int

    @property
    def speedup(self) -> float:
        if self.prepared_seconds == 0:
            return float("inf")
        return self.legacy_seconds / self.prepared_seconds


def _populate(session) -> None:
    session.execute_script("""
        CREATE TABLE r (a int, b int);
        CREATE TABLE s (c int, d int);
    """)
    session.insert(
        "r", [(i % 50, i % 7) for i in range(_SETUP_ROWS)])
    session.insert(
        "s", [(i % 45, i) for i in range(_SETUP_ROWS)])


def run_smoke(repeats: int = 20) -> SmokeResult:
    """Run the micro-benchmark; see the module docstring."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    conn = connect()
    _populate(conn)
    db = Database(conn)   # same catalog, legacy uncached path

    # Warm both paths once so first-call effects are excluded.
    baseline = db.sql(_LEGACY_QUERY)
    statement = conn.prepare(_QUERY)
    prepared_rows = statement.execute((40,))
    if sorted(prepared_rows.rows) != sorted(baseline.rows):
        raise AssertionError(
            "prepared path disagrees with the legacy path")

    start = time.perf_counter()
    for _ in range(repeats):
        db.sql(_LEGACY_QUERY)
    legacy_seconds = time.perf_counter() - start

    hits_before = conn.plan_cache.hits
    start = time.perf_counter()
    for _ in range(repeats):
        statement.execute((40,))
    prepared_seconds = time.perf_counter() - start

    return SmokeResult(
        repeats=repeats,
        legacy_seconds=legacy_seconds,
        prepared_seconds=prepared_seconds,
        cache_hits=conn.plan_cache.hits - hits_before,
        rows=len(prepared_rows.rows),
    )


def format_smoke(result: SmokeResult) -> str:
    per_legacy = result.legacy_seconds / result.repeats * 1000
    per_prepared = result.prepared_seconds / result.repeats * 1000
    return "\n".join([
        f"repeats                  {result.repeats}",
        f"result rows              {result.rows}",
        f"plan-cache hits          {result.cache_hits}",
        f"Database.sql() per call  {per_legacy:8.3f} ms",
        f"prepared per call        {per_prepared:8.3f} ms",
        f"speedup                  {result.speedup:8.1f}x",
    ])
