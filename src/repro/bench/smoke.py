"""Smoke micro-benchmarks (``python -m repro.bench --smoke``).

Two checks, both run by CI as regression gates:

* **Plan cache** — the same provenance query executed two ways over one
  catalog: the legacy per-call path (``Database.sql()`` re-parses,
  re-analyzes, re-rewrites, re-optimizes and re-lowers on every call)
  versus a :class:`~repro.api.PreparedStatement` planned once and
  re-executed through the plan cache.  The speedup is what the plan
  cache buys on a repeated query.

* **Engine** — the pipelined, vectorized engine versus the original
  materializing interpreter on the *synthetic provenance workload* (the
  paper's Section 4.2.2 q1 under the Unn strategy, which plans to the
  hash equi-join of Figures 7-9).  Both run the same cached physical
  plan shape, so the ratio isolates execution: batched pulls and
  batch-compiled expressions against per-row tree interpretation.  The
  check also asserts the Unn plan still picks a hash join — the paper's
  Figures 7-9 behaviour.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import asdict, dataclass

from ..api import connect
from ..db import Database
from ..synthetic import SyntheticConfig, load_synthetic, q1_sql

#: Small Figure-3-shaped relations: the plan-cache workload is
#: deliberately planning-bound (parse + analyze + rewrite + optimize
#: dominates), which is exactly the repeated-query profile plan caching
#: exists for.
_SETUP_ROWS = 6

_QUERY = ("SELECT PROVENANCE r.a, r.b FROM r "
          "WHERE a = ANY (SELECT c FROM s WHERE c < ?) "
          "AND EXISTS (SELECT c FROM s WHERE s.d < 90)")
_LEGACY_QUERY = _QUERY.replace("?", "40")

#: The engine workload is execution-bound: |R1| = |R2| = 2000 synthetic
#: rows, q1 (equality ANY -> Unn-eligible) with provenance under Unn.
_ENGINE_SIZE = 2000


@dataclass
class SmokeResult:
    """Outcome of the two smoke micro-benchmarks."""

    repeats: int
    legacy_seconds: float        # total, Database.sql() per call
    prepared_seconds: float      # total, PreparedStatement.execute per call
    cache_hits: int
    rows: int
    engine_repeats: int
    materializing_seconds: float  # total, materializing engine per call
    pipelined_seconds: float      # total, pipelined engine per call
    engine_rows: int
    engine_hash_joins: int        # hash joins in the pipelined Unn run

    @property
    def speedup(self) -> float:
        """Plan-cache speedup: legacy per-call path vs prepared."""
        if self.prepared_seconds == 0:
            return float("inf")
        return self.legacy_seconds / self.prepared_seconds

    @property
    def engine_speedup(self) -> float:
        """Pipelined engine vs the materializing baseline."""
        if self.pipelined_seconds == 0:
            return float("inf")
        return self.materializing_seconds / self.pipelined_seconds

    def to_dict(self) -> dict:
        """JSON-friendly form (uploaded as a CI artifact so BENCH_*
        trajectories are comparable across PRs)."""
        data = asdict(self)
        data["speedup"] = self.speedup
        data["engine_speedup"] = self.engine_speedup
        return data


def _populate(session) -> None:
    session.execute_script("""
        CREATE TABLE r (a int, b int);
        CREATE TABLE s (c int, d int);
    """)
    session.insert(
        "r", [(i % 50, i % 7) for i in range(_SETUP_ROWS)])
    session.insert(
        "s", [(i % 45, i) for i in range(_SETUP_ROWS)])


def _run_plan_cache(repeats: int) -> tuple[float, float, int, int]:
    conn = connect()
    _populate(conn)
    db = Database(conn)   # same catalog, legacy uncached path

    # Warm both paths once so first-call effects are excluded.
    baseline = db.sql(_LEGACY_QUERY)
    statement = conn.prepare(_QUERY)
    prepared_rows = statement.execute((40,))
    if sorted(prepared_rows.rows) != sorted(baseline.rows):
        raise AssertionError(
            "prepared path disagrees with the legacy path")

    start = time.perf_counter()
    for _ in range(repeats):
        db.sql(_LEGACY_QUERY)
    legacy_seconds = time.perf_counter() - start

    hits_before = conn.plan_cache.hits
    start = time.perf_counter()
    for _ in range(repeats):
        statement.execute((40,))
    prepared_seconds = time.perf_counter() - start

    return (legacy_seconds, prepared_seconds,
            conn.plan_cache.hits - hits_before, len(prepared_rows.rows))


def _run_engines(repeats: int,
                 size: int = _ENGINE_SIZE) -> tuple[float, float, int, int]:
    db = load_synthetic(SyntheticConfig(size, size, seed=0))
    sql = "SELECT PROVENANCE " + q1_sql(size, size, seed=0)[len("SELECT "):]

    timings: dict[str, float] = {}
    results: dict[str, Counter] = {}
    hash_joins = 0
    for engine in ("materializing", "pipelined"):
        conn = connect(engine=engine, catalog=db.catalog)
        statement = conn.prepare(sql, strategy="unn")
        relation = statement.execute(())    # warm: plan cached, table hot
        results[engine] = Counter(relation.rows)
        rounds = []
        for _ in range(3):                  # best-of-3 rounds: noise-robust
            start = time.perf_counter()
            for _ in range(repeats):
                statement.execute(())
            rounds.append(time.perf_counter() - start)
        timings[engine] = min(rounds)
        if engine == "pipelined":
            hash_joins = conn.last_stats.hash_joins
        conn.close()
    if results["pipelined"] != results["materializing"]:
        raise AssertionError(
            "pipelined engine disagrees with the materializing engine")
    return (timings["materializing"], timings["pipelined"],
            sum(results["pipelined"].values()), hash_joins)


def run_smoke(repeats: int = 20, engine_repeats: int = 5) -> SmokeResult:
    """Run both micro-benchmarks; see the module docstring."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if engine_repeats < 1:
        raise ValueError(
            f"engine_repeats must be >= 1, got {engine_repeats}")
    legacy_seconds, prepared_seconds, cache_hits, rows = \
        _run_plan_cache(repeats)
    materializing_seconds, pipelined_seconds, engine_rows, hash_joins = \
        _run_engines(engine_repeats)
    return SmokeResult(
        repeats=repeats,
        legacy_seconds=legacy_seconds,
        prepared_seconds=prepared_seconds,
        cache_hits=cache_hits,
        rows=rows,
        engine_repeats=engine_repeats,
        materializing_seconds=materializing_seconds,
        pipelined_seconds=pipelined_seconds,
        engine_rows=engine_rows,
        engine_hash_joins=hash_joins,
    )


def format_smoke(result: SmokeResult) -> str:
    per_legacy = result.legacy_seconds / result.repeats * 1000
    per_prepared = result.prepared_seconds / result.repeats * 1000
    per_materializing = \
        result.materializing_seconds / result.engine_repeats * 1000
    per_pipelined = result.pipelined_seconds / result.engine_repeats * 1000
    return "\n".join([
        "-- plan cache (repeated provenance query) --",
        f"repeats                  {result.repeats}",
        f"result rows              {result.rows}",
        f"plan-cache hits          {result.cache_hits}",
        f"Database.sql() per call  {per_legacy:8.3f} ms",
        f"prepared per call        {per_prepared:8.3f} ms",
        f"speedup                  {result.speedup:8.1f}x",
        "-- engine (synthetic q1 provenance, Unn) --",
        f"repeats                  {result.engine_repeats}",
        f"result rows              {result.engine_rows}",
        f"hash joins (Unn plan)    {result.engine_hash_joins}",
        f"materializing per call   {per_materializing:8.3f} ms",
        f"pipelined per call       {per_pipelined:8.3f} ms",
        f"engine speedup           {result.engine_speedup:8.1f}x",
    ])
