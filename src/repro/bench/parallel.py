"""Parallel-execution benchmark (``python -m repro.bench --parallel``).

One grid, three worker settings.  Every cell is a query prepared once
per setting and re-executed through the plan cache:

* the **scanagg** workload — filtered scans and grouped aggregates over
  a large synthetic table, once unpartitioned (Gather plans the
  ``scan``/``repartition``/``twophase`` exchange modes) and once hash-
  partitioned on the grouping key (partition-wise aggregation plus
  partition pruning) — the shapes intra-query parallelism exists for;

* the fig8/fig9 synthetic provenance workloads (q1/q2 across their
  rewrite strategies) and the uncorrelated TPC-H sublink templates
  (Q11/Q15/Q16 under Left and Move), which mostly plan to joins the
  exchange operators do not split — their cells document that the
  parallel planner leaves join-heavy provenance plans alone rather
  than pessimizing them.

Every cell cross-checks each worker setting's *ordered* result rows
against the serial run — the exchange operators are required to be
bit-identical, not merely bag-equal — and records how many Gather
fan-outs actually happened, so a cell that silently fell back to
serial execution is visible in the committed JSON
(``BENCH_parallel.json``).  The host's CPU count is recorded alongside
the timings: on a single-core container the worker processes time-slice
one core, so parallel runs are expected to trail serial ones there and
the numbers are only meaningful relative to ``cpus``.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

from ..api import connect
from ..synthetic import SyntheticConfig, load_synthetic, q1_sql, q2_sql
from ..tpch import install_views, load_tpch, query_sql

#: Worker settings per cell; 1 plans serially (the baseline).
WORKER_SETTINGS = (1, 2, 4)
#: Fan-out threshold for the grid: low enough that every eligible plan
#: over the workloads below actually exchanges.
PARALLEL_THRESHOLD = 256

#: scanagg: rows in the synthetic scan/aggregate table.
SCANAGG_ROWS = 30000
SCANAGG_GROUPS = 64
SCANAGG_PARTITIONS = 4

#: Synthetic provenance points (one size per figure shape).
FIG8_POINT = (500, 1000)
FIG9_POINT = (1000, 1000)
GEN_MAX_SIZE = 100

TPCH_QUERIES = (11, 15, 16)
TPCH_STRATEGIES = ("left", "move")
TPCH_SCALE = 0.00015


@dataclass
class ParallelCell:
    """One query measured serially and at each parallel setting."""

    workload: str            # "scanagg", "fig8", "fig9" or "tpch"
    case: str
    strategy: str            # rewrite strategy, or "-" for plain SQL
    rows: int
    seconds: dict[str, float]     # "w1"/"w2"/"w4" -> per-call seconds
    fanouts: dict[str, int]       # setting -> Gather fan-outs per call

    @property
    def parallel_speedup(self) -> float:
        """Best parallel setting vs the serial baseline."""
        best = min(seconds for key, seconds in self.seconds.items()
                   if key != "w1")
        if best == 0:
            return float("inf")
        return self.seconds["w1"] / best

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "case": self.case,
            "strategy": self.strategy,
            "rows": self.rows,
            "seconds": dict(self.seconds),
            "fanouts": dict(self.fanouts),
            "parallel_speedup": self.parallel_speedup,
        }


@dataclass
class ParallelBenchResult:
    """The full parallel-execution grid."""

    repeats: int
    cpus: int                 # os.cpu_count() of the measuring host
    cells: list[ParallelCell]

    @property
    def exchanged_cells(self) -> int:
        """Cells where at least one parallel setting actually fanned
        out (the rest prove the planner leaves serial plans alone)."""
        return sum(1 for cell in self.cells
                   if any(count for key, count in cell.fanouts.items()
                          if key != "w1"))

    @property
    def scanagg_speedup(self) -> float:
        """Geomean parallel speedup over the cells built to exchange."""
        ratios = [cell.parallel_speedup for cell in self.cells
                  if cell.workload == "scanagg"
                  and cell.parallel_speedup > 0]
        if not ratios:
            return float("nan")
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def to_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "cpus": self.cpus,
            "worker_settings": list(WORKER_SETTINGS),
            "parallel_threshold": PARALLEL_THRESHOLD,
            "exchanged_cells": self.exchanged_cells,
            "scanagg_speedup": self.scanagg_speedup,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _provenance_sql(sql: str) -> str:
    if not sql.upper().startswith("SELECT "):
        raise ValueError(f"not a SELECT: {sql[:40]!r}")
    return "SELECT PROVENANCE " + sql[len("SELECT "):]


def _time_cell(catalog, sql: str, strategy: str | None, repeats: int,
               workload: str, case: str) -> ParallelCell:
    """Measure one query at every worker setting over a shared catalog."""
    timings: dict[str, float] = {}
    fanouts: dict[str, int] = {}
    baseline: list | None = None
    rows = 0
    for workers in WORKER_SETTINGS:
        key = f"w{workers}"
        conn = connect(catalog=catalog, max_parallel_workers=workers,
                       parallel_threshold=PARALLEL_THRESHOLD)
        statement = conn.prepare(sql, strategy=strategy)
        result = statement.execute(()).rows   # warm: plan + pool + blobs
        fanouts[key] = conn.last_stats.parallel_fanouts
        if workers == 1:
            baseline = result
            rows = len(result)
        elif result != baseline:
            raise AssertionError(
                f"workers={workers} run of {workload}/{case}/{strategy} "
                f"is not bit-identical to the serial baseline")
        best = float("inf")
        for _ in range(3):                    # best-of-3 rounds
            start = time.perf_counter()
            for _ in range(repeats):
                statement.execute(()).rows    # drain the stream
            best = min(best, time.perf_counter() - start)
        timings[key] = best / repeats
        conn.close()
    return ParallelCell(workload, case, strategy or "-", rows,
                        timings, fanouts)


def _scanagg_catalog():
    """The scan/aggregate workload tables: one plain copy, one
    hash-partitioned on the grouping key."""
    conn = connect()
    conn.execute("CREATE TABLE events (grp int, val int)")
    conn.execute(f"CREATE TABLE events_p (grp int, val int) "
                 f"PARTITION BY HASH(grp) "
                 f"PARTITIONS {SCANAGG_PARTITIONS}")
    rows = [((i * 7919) % SCANAGG_GROUPS, i % 1000)
            for i in range(SCANAGG_ROWS)]
    conn.insert("events", rows)
    conn.insert("events_p", rows)
    conn.execute("ANALYZE")
    return conn.catalog


def _scanagg_cells(repeats: int, verbose: bool) -> list[ParallelCell]:
    catalog = _scanagg_catalog()
    cases = [
        ("filter-scan",
         "SELECT grp, val FROM events WHERE val < 120"),
        ("group-agg",
         "SELECT grp, count(*) AS n, sum(val) AS s "
         "FROM events GROUP BY grp"),
        ("global-agg",
         "SELECT count(*) AS n, sum(val) AS s, max(val) AS hi "
         "FROM events WHERE val < 900"),
        ("partition-agg",
         "SELECT grp, count(*) AS n, sum(val) AS s "
         "FROM events_p GROUP BY grp"),
        ("partition-prune",
         "SELECT val FROM events_p WHERE grp = 11 AND val < 500"),
    ]
    cells = []
    for case, sql in cases:
        cell = _time_cell(catalog, sql, None, repeats, "scanagg", case)
        cells.append(cell)
        if verbose:
            print("  " + _format_cell(cell), flush=True)
    return cells


def _synthetic_cells(workload: str, input_size: int, sublink_size: int,
                     repeats: int, seed: int,
                     verbose: bool) -> list[ParallelCell]:
    db = load_synthetic(SyntheticConfig(input_size, sublink_size,
                                        seed=seed))
    cells: list[ParallelCell] = []
    for case, sql_fn, strategies in (
            ("q1", q1_sql, ("gen", "left", "move", "unn")),
            ("q2", q2_sql, ("gen", "left", "move"))):
        sql = _provenance_sql(sql_fn(input_size, sublink_size, seed=seed))
        for strategy in strategies:
            if strategy == "gen" \
                    and max(input_size, sublink_size) > GEN_MAX_SIZE:
                continue   # correlated per-row execution, O(n^2)
            cell = _time_cell(db.catalog, sql, strategy, repeats,
                              workload, case)
            cells.append(cell)
            if verbose:
                print("  " + _format_cell(cell), flush=True)
    return cells


def _tpch_cells(repeats: int, seed: int,
                verbose: bool) -> list[ParallelCell]:
    db = load_tpch(scale=TPCH_SCALE, seed=seed)
    install_views(db)
    cells: list[ParallelCell] = []
    for query in TPCH_QUERIES:
        sql = _provenance_sql(query_sql(query, seed=seed))
        for strategy in TPCH_STRATEGIES:
            cell = _time_cell(db.catalog, sql, strategy, repeats,
                              "tpch", f"Q{query}")
            cells.append(cell)
            if verbose:
                print("  " + _format_cell(cell), flush=True)
    return cells


def run_parallel_bench(repeats: int = 3, seed: int = 0,
                       verbose: bool = False) -> ParallelBenchResult:
    """Run the full grid; see the module docstring."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    cells = _scanagg_cells(repeats, verbose)
    cells += _synthetic_cells("fig8", *FIG8_POINT, repeats, seed, verbose)
    cells += _synthetic_cells("fig9", *FIG9_POINT, repeats, seed, verbose)
    cells += _tpch_cells(repeats, seed, verbose)
    return ParallelBenchResult(repeats=repeats,
                               cpus=os.cpu_count() or 1, cells=cells)


def _format_cell(cell: ParallelCell) -> str:
    per = {key: f"{cell.seconds.get(key, 0) * 1000:9.3f}"
           for key in ("w1", "w2", "w4")}
    fan = "/".join(str(cell.fanouts.get(f"w{w}", 0))
                   for w in WORKER_SETTINGS)
    return (f"{cell.workload:7s} {cell.case:15s} {cell.strategy:5s} "
            f"{per['w1']} {per['w2']} {per['w4']} "
            f"{cell.parallel_speedup:6.2f}x  [{fan}]")


def format_parallel_bench(result: ParallelBenchResult) -> str:
    lines = [
        f"host cpus: {result.cpus}   (speedups need >= 2 real cores)",
        "workload case            strat     w1 ms     w2 ms     w4 ms "
        " best-x  [fanouts]",
    ]
    lines += [_format_cell(cell) for cell in result.cells]
    lines += [
        f"cells that exchanged                 "
        f"{result.exchanged_cells}/{len(result.cells)}",
        f"geomean scanagg parallel speedup     "
        f"{result.scanagg_speedup:6.2f}x",
    ]
    return "\n".join(lines)
