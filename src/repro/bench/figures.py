"""Per-figure experiment drivers.

Each ``run_fig*`` function regenerates one figure of the paper as a list
of result rows (printable with :func:`format_table`).  Scales are reduced
from the paper's PostgreSQL testbed to pure-Python-engine scale; the
*shape* of each figure — which strategy wins, by how much, and how costs
grow — is what these reproduce (see EXPERIMENTS.md).

Figure 6 (a-d): the nine TPC-H sublink templates at four database sizes,
Gen on all nine, Left/Move additionally on the uncorrelated Q11/Q15/Q16.
The paper's six-hour cutoff becomes a per-case timeout.

Figures 7/8/9: synthetic q1 (equality ANY, Unn-eligible) and q2
(inequality ALL) varying the input relation size, the sublink relation
size, and both.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..synthetic import SyntheticConfig, load_synthetic, q1_sql, q2_sql
from ..tpch import (
    PAPER_SUBLINK_QUERIES, install_views, load_tpch, query_sql,
    query_strategies,
)
from .harness import BenchResult, time_provenance_query

# The paper's 1MB / 10MB / 100MB / 1GB ladder, rescaled: each step grows
# ~3x (1000x total would be days of pure-Python execution).
FIG6_SCALES: dict[str, float] = {
    "1MB": 0.00005,
    "10MB": 0.00015,
    "100MB": 0.0005,
    "1GB": 0.0015,
}

FIG7_INPUT_SIZES = (10, 50, 100, 500, 1000, 2000)
FIG8_SUBLINK_SIZES = (10, 50, 100, 500, 1000, 2000)
FIG9_BOTH_SIZES = (10, 50, 100, 200, 500, 1000)

#: Synthetic strategies: all four for q1 (Unn applies via rule U2), and
#: the three general ones for q2 (the paper: "except Unn that provides
#: only a rewrite rule for query q1").
Q1_STRATEGIES = ("gen", "left", "move", "unn")
Q2_STRATEGIES = ("gen", "left", "move")


@dataclass
class FigureRow:
    """One measured point of a figure."""

    figure: str
    case: str              # e.g. "Q11" or "input=500"
    size: str              # e.g. "10MB" or "n=1000"
    strategy: str
    result: BenchResult
    instances: int = 1

    def cells(self) -> tuple[str, ...]:
        return (self.figure, self.case, self.size, self.strategy,
                self.result.label,
                "-" if self.result.rows is None else str(self.result.rows))


def _mean_result(results: Sequence[BenchResult]) -> BenchResult:
    finished = [r for r in results if not r.timed_out]
    if not finished:
        return BenchResult(None, None, timed_out=True)
    return BenchResult(
        statistics.mean(r.seconds for r in finished),
        round(statistics.mean(r.rows for r in finished)))


def run_fig6(scales: dict[str, float] | None = None,
             queries: Iterable[int] = PAPER_SUBLINK_QUERIES,
             instances: int = 3, timeout_s: float = 60.0,
             seed: int = 0, verbose: bool = False) -> list[FigureRow]:
    """Figure 6 (a-d): TPC-H sublink queries across database sizes."""
    scales = scales or FIG6_SCALES
    rows: list[FigureRow] = []
    for size_label, scale in scales.items():
        db = load_tpch(scale=scale, seed=seed)
        install_views(db)
        for query in queries:
            for strategy in query_strategies(query):
                results = []
                for instance in range(instances):
                    sql = query_sql(query, seed=seed + instance)
                    results.append(time_provenance_query(
                        db, sql, strategy, timeout_s))
                    if results[-1].timed_out:
                        break  # larger instances will also time out
                row = FigureRow("fig6", f"Q{query}", size_label, strategy,
                                _mean_result(results), len(results))
                rows.append(row)
                if verbose:
                    print("  " + " | ".join(row.cells()), flush=True)
    return rows


def _run_synthetic(figure: str, cases: Iterable[tuple[int, int]],
                   instances: int, timeout_s: float, seed: int,
                   verbose: bool) -> list[FigureRow]:
    rows: list[FigureRow] = []
    for input_size, sublink_size in cases:
        for query_name, sql_fn, strategies in (
                ("q1", q1_sql, Q1_STRATEGIES),
                ("q2", q2_sql, Q2_STRATEGIES)):
            for strategy in strategies:
                results = []
                for instance in range(instances):
                    db = load_synthetic(SyntheticConfig(
                        input_size, sublink_size, seed + instance))
                    sql = sql_fn(input_size, sublink_size,
                                 seed + instance)
                    results.append(time_provenance_query(
                        db, sql, strategy, timeout_s))
                    if results[-1].timed_out:
                        break
                size_label = f"|R1|={input_size},|R2|={sublink_size}"
                row = FigureRow(figure, query_name, size_label, strategy,
                                _mean_result(results), len(results))
                rows.append(row)
                if verbose:
                    print("  " + " | ".join(row.cells()), flush=True)
    return rows


def run_fig7(input_sizes: Sequence[int] = FIG7_INPUT_SIZES,
             sublink_size: int = 1000, instances: int = 3,
             timeout_s: float = 60.0, seed: int = 0,
             verbose: bool = False) -> list[FigureRow]:
    """Figure 7: vary the selection's input relation, sublink fixed."""
    cases = [(n, sublink_size) for n in input_sizes]
    return _run_synthetic("fig7", cases, instances, timeout_s, seed,
                          verbose)


def run_fig8(sublink_sizes: Sequence[int] = FIG8_SUBLINK_SIZES,
             input_size: int = 1000, instances: int = 3,
             timeout_s: float = 60.0, seed: int = 0,
             verbose: bool = False) -> list[FigureRow]:
    """Figure 8: vary the sublink relation, input fixed."""
    cases = [(input_size, n) for n in sublink_sizes]
    return _run_synthetic("fig8", cases, instances, timeout_s, seed,
                          verbose)


def run_fig9(sizes: Sequence[int] = FIG9_BOTH_SIZES, instances: int = 3,
             timeout_s: float = 60.0, seed: int = 0,
             verbose: bool = False) -> list[FigureRow]:
    """Figure 9: vary both relation sizes together."""
    cases = [(n, n) for n in sizes]
    return _run_synthetic("fig9", cases, instances, timeout_s, seed,
                          verbose)


def format_table(rows: Sequence[FigureRow]) -> str:
    """Aligned text table of figure rows."""
    header = ("figure", "case", "size", "strategy", "mean time", "rows")
    table = [header] + [row.cells() for row in rows]
    widths = [max(len(line[i]) for line in table)
              for i in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
