"""Multi-client load benchmark over the wire server
(``python -m repro.bench --serve``).

Boots a :class:`~repro.server.Server` on an ephemeral port over a shared
engine, drives it with N concurrent :mod:`repro.client` connections —
each running a prepared range-aggregation query in a closed loop — and
reports aggregate queries/sec plus client-observed p50/p99 latency.

The same query is also run in-process (one session, one thread, a
prepared statement in a closed loop) for the same duration.  The gated
ratio — served throughput at least half of in-process throughput — caps
what the network layer is allowed to cost: protocol encode/decode,
asyncio scheduling and the executor hop must stay small next to query
execution.  The workload scans ~2000 rows per query precisely so the
comparison measures serving overhead against *real* per-query work, not
against a no-op.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass

from ..api import Engine
from ..client import connect
from ..server import Server, ServerConfig

#: Rows in the scanned table; each query aggregates a ~100-row range
#: out of a full scan, for ~1ms of real engine work per query.
_ROWS = 2000
_SPAN = 100

_WIRE_QUERY = ("SELECT count(*), sum(v) FROM big "
               "WHERE k >= $1 AND k < $2")
_LOCAL_QUERY = _WIRE_QUERY.replace("$1", "?").replace("$2", "?")


def _populate(engine: Engine, rows: int) -> None:
    with engine.connect() as conn:
        conn.execute("CREATE TABLE big (k int, v int)")
        insert = conn.prepare("INSERT INTO big VALUES (?, ?)")
        with conn.transaction():
            for k in range(rows):
                insert.execute((k, k * 7 % 101))
        conn.execute("ANALYZE big")


@dataclass
class ServeBenchResult:
    """One load-bench run; ``ratio`` is the gated number."""

    clients: int
    duration_s: float
    rows: int
    #: served path: aggregate over all concurrent clients
    server_queries: int
    server_qps: float
    p50_ms: float
    p99_ms: float
    #: in-process baseline: one session, one thread, same duration
    inproc_queries: int
    inproc_qps: float
    #: server_qps / inproc_qps — the cost of the network layer
    ratio: float

    def to_dict(self) -> dict:
        return asdict(self)


def _percentile(sorted_values: "list[float]", fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * len(sorted_values)))
    return sorted_values[index]


def _run_inproc(engine: Engine, duration: float) -> int:
    with engine.connect() as conn:
        statement = conn.prepare(_LOCAL_QUERY)
        statement.execute((0, _SPAN)).rows            # warm the plan
        queries = 0
        deadline = time.perf_counter() + duration
        k = 0
        while time.perf_counter() < deadline:
            statement.execute((k, k + _SPAN)).rows
            queries += 1
            k = (k + 101) % (_ROWS - _SPAN)
        return queries


async def _run_clients(port: int, clients: int, duration: float
                       ) -> "tuple[int, list[float]]":
    connections = [await connect("127.0.0.1", port)
                   for _ in range(clients)]
    statements = [await conn.prepare(_WIRE_QUERY)
                  for conn in connections]
    for statement in statements:                      # warm the plans
        await statement.execute((0, _SPAN))
    latencies: "list[float]" = []
    counts = [0] * clients

    async def worker(index: int) -> None:
        statement = statements[index]
        k = (index * 37) % (_ROWS - _SPAN)
        deadline = time.perf_counter() + duration
        while time.perf_counter() < deadline:
            started = time.perf_counter()
            await statement.execute((k, k + _SPAN))
            latencies.append(time.perf_counter() - started)
            counts[index] += 1
            k = (k + 101) % (_ROWS - _SPAN)

    await asyncio.gather(*(worker(i) for i in range(clients)))
    for conn in connections:
        await conn.close()
    return sum(counts), latencies


async def _run_served(engine: Engine, clients: int, duration: float,
                      worker_threads: int) -> "tuple[int, list[float]]":
    config = ServerConfig(port=0, worker_threads=worker_threads,
                          max_connections=max(64, clients + 4))
    async with Server(config, engines={"repro": engine}) as server:
        return await _run_clients(server.port, clients, duration)


def run_serve_bench(clients: int = 16, duration: float = 2.0,
                    rows: int = _ROWS, worker_threads: int = 8
                    ) -> ServeBenchResult:
    """Measure served vs in-process throughput on a shared engine."""
    engine = Engine()
    try:
        _populate(engine, rows)
        inproc_queries = _run_inproc(engine, duration)
        server_queries, latencies = asyncio.run(
            _run_served(engine, clients, duration, worker_threads))
    finally:
        engine.close()
    latencies.sort()
    inproc_qps = inproc_queries / duration
    server_qps = server_queries / duration
    return ServeBenchResult(
        clients=clients,
        duration_s=duration,
        rows=rows,
        server_queries=server_queries,
        server_qps=round(server_qps, 1),
        p50_ms=round(_percentile(latencies, 0.50) * 1000, 3),
        p99_ms=round(_percentile(latencies, 0.99) * 1000, 3),
        inproc_queries=inproc_queries,
        inproc_qps=round(inproc_qps, 1),
        ratio=round(server_qps / inproc_qps, 3) if inproc_qps else 0.0,
    )


def format_serve(result: ServeBenchResult) -> str:
    return (
        f"served    : {result.server_queries} queries from "
        f"{result.clients} clients in {result.duration_s:.1f}s "
        f"= {result.server_qps:.0f} q/s "
        f"(p50 {result.p50_ms:.2f} ms, p99 {result.p99_ms:.2f} ms)\n"
        f"in-process: {result.inproc_queries} queries single-threaded "
        f"= {result.inproc_qps:.0f} q/s\n"
        f"ratio     : {result.ratio:.2f}x of in-process throughput"
    )
