"""Engine comparison benchmark (``python -m repro.bench --engine``).

One grid, three engines.  Every cell is a provenance query — the
fig8/fig9 synthetic workloads (q1 equality-ANY and q2 inequality-ALL
across their rewrite strategies) plus the uncorrelated TPC-H sublink
templates (Q11/Q15/Q16 under Left and Move) — prepared once per engine
and re-executed through the plan cache, so each cell isolates
*execution*: the same physical plan shape interpreted row-at-a-time
(materializing), pulled in row batches (pipelined), or run over column
vectors (vectorized).

Every cell also cross-checks the three engines' result multisets, so a
bench run doubles as a coarse parity sweep, and records the vectorized
plan's columnar/row-fallback node counts so regressions to the slow
path show up in the committed JSON (``BENCH_engine.json``).

The Gen strategy keeps correlated sublinks, which execute per-row and
cannot vectorize; it is measured only at the smallest synthetic size
(where it demonstrates fallback correctness, not throughput) and
skipped for TPC-H, where it is orders of magnitude slower than the
rewriting strategies.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass

from ..api import connect
from ..synthetic import SyntheticConfig, load_synthetic, q1_sql, q2_sql
from ..tpch import install_views, load_tpch, query_sql

ENGINES = ("materializing", "pipelined", "vectorized")

#: fig8 shape: |R1| fixed, the sublink relation |R2| varies.
FIG8_INPUT_SIZE = 500
FIG8_SUBLINK_SIZES = (100, 500, 1000)
#: fig9 shape: both relations grow together.
FIG9_SIZES = (100, 500, 1000)
#: Gen keeps the correlated sublink (per-row nested execution, O(n^2));
#: it is only measured up to this size.
GEN_MAX_SIZE = 100

#: The paper's purely uncorrelated templates (fig6), under the two
#: rewriting strategies that plan to joins + aggregates.
TPCH_QUERIES = (11, 15, 16)
TPCH_STRATEGIES = ("left", "move")
TPCH_SCALE = 0.00015   # the rescaled "10MB" point of FIG6_SCALES


@dataclass
class EngineCell:
    """One (workload, strategy) point measured on all three engines."""

    workload: str            # "fig8", "fig9" or "tpch"
    case: str                # "q1", "q2" or "Q11"
    size: str                # e.g. "|R1|=500,|R2|=1000"
    strategy: str
    rows: int
    seconds: dict[str, float]     # engine -> per-call seconds
    vectorized_nodes: int         # columnar nodes in the vectorized plan
    row_fallback_nodes: int       # row-format nodes kept by the fallback

    @property
    def vectorized_speedup(self) -> float:
        """Vectorized vs pipelined on this cell."""
        if self.seconds["vectorized"] == 0:
            return float("inf")
        return self.seconds["pipelined"] / self.seconds["vectorized"]

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "case": self.case,
            "size": self.size,
            "strategy": self.strategy,
            "rows": self.rows,
            "seconds": dict(self.seconds),
            "vectorized_nodes": self.vectorized_nodes,
            "row_fallback_nodes": self.row_fallback_nodes,
            "vectorized_speedup": self.vectorized_speedup,
        }


@dataclass
class EngineBenchResult:
    """The full engine-comparison grid."""

    repeats: int
    cells: list[EngineCell]

    def _geomean(self, numer: str, denom: str) -> float:
        ratios = []
        for cell in self.cells:
            if cell.seconds[denom] > 0:
                ratios.append(cell.seconds[numer] / cell.seconds[denom])
        if not ratios:
            return float("nan")
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    @property
    def vectorized_speedup(self) -> float:
        """Geometric-mean vectorized-vs-pipelined speedup over the grid."""
        return self._geomean("pipelined", "vectorized")

    @property
    def vectorized_vs_materializing(self) -> float:
        return self._geomean("materializing", "vectorized")

    def to_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "engines": list(ENGINES),
            "vectorized_speedup": self.vectorized_speedup,
            "vectorized_vs_materializing": self.vectorized_vs_materializing,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _provenance_sql(sql: str) -> str:
    if not sql.upper().startswith("SELECT "):
        raise ValueError(f"not a SELECT: {sql[:40]!r}")
    return "SELECT PROVENANCE " + sql[len("SELECT "):]


def _time_cell(catalog, sql: str, strategy: str, repeats: int,
               workload: str, case: str, size: str) -> EngineCell:
    """Measure one query on all three engines over a shared catalog."""
    timings: dict[str, float] = {}
    results: dict[str, Counter] = {}
    vectorized_nodes = row_fallback_nodes = 0
    for engine in ENGINES:
        conn = connect(engine=engine, catalog=catalog)
        statement = conn.prepare(sql, strategy=strategy)
        relation = statement.execute(())   # warm: plan cached, cache hot
        results[engine] = Counter(relation.rows)
        best = float("inf")
        for _ in range(3):                 # best-of-3 rounds
            start = time.perf_counter()
            for _ in range(repeats):
                statement.execute(()).rows   # drain the streaming result
            best = min(best, time.perf_counter() - start)
        timings[engine] = best / repeats
        if engine == "vectorized":
            vectorized_nodes = conn.last_stats.vectorized_nodes
            row_fallback_nodes = conn.last_stats.row_fallback_nodes
        conn.close()
    if not (results["vectorized"] == results["pipelined"]
            == results["materializing"]):
        raise AssertionError(
            f"engines disagree on {workload}/{case}/{size}/{strategy}")
    return EngineCell(workload, case, size, strategy,
                      sum(results["vectorized"].values()), timings,
                      vectorized_nodes, row_fallback_nodes)


def _synthetic_cells(workload: str, cases: list[tuple[int, int]],
                     repeats: int, seed: int,
                     verbose: bool) -> list[EngineCell]:
    cells: list[EngineCell] = []
    for input_size, sublink_size in cases:
        db = load_synthetic(SyntheticConfig(input_size, sublink_size,
                                            seed=seed))
        for case, sql_fn, strategies in (
                ("q1", q1_sql, ("gen", "left", "move", "unn")),
                ("q2", q2_sql, ("gen", "left", "move"))):
            sql = _provenance_sql(
                sql_fn(input_size, sublink_size, seed=seed))
            size = f"|R1|={input_size},|R2|={sublink_size}"
            for strategy in strategies:
                if strategy == "gen" \
                        and max(input_size, sublink_size) > GEN_MAX_SIZE:
                    continue   # correlated per-row execution, O(n^2)
                cell = _time_cell(db.catalog, sql, strategy, repeats,
                                  workload, case, size)
                cells.append(cell)
                if verbose:
                    print("  " + _format_cell(cell), flush=True)
    return cells


def _tpch_cells(repeats: int, seed: int,
                verbose: bool) -> list[EngineCell]:
    db = load_tpch(scale=TPCH_SCALE, seed=seed)
    install_views(db)
    cells: list[EngineCell] = []
    for query in TPCH_QUERIES:
        sql = _provenance_sql(query_sql(query, seed=seed))
        for strategy in TPCH_STRATEGIES:
            cell = _time_cell(db.catalog, sql, strategy, repeats,
                              "tpch", f"Q{query}", f"sf={TPCH_SCALE}")
            cells.append(cell)
            if verbose:
                print("  " + _format_cell(cell), flush=True)
    return cells


def run_engine_bench(repeats: int = 3, seed: int = 0,
                     verbose: bool = False) -> EngineBenchResult:
    """Run the full grid; see the module docstring."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    cells = _synthetic_cells(
        "fig8", [(FIG8_INPUT_SIZE, n) for n in FIG8_SUBLINK_SIZES],
        repeats, seed, verbose)
    cells += _synthetic_cells(
        "fig9", [(n, n) for n in FIG9_SIZES], repeats, seed, verbose)
    cells += _tpch_cells(repeats, seed, verbose)
    return EngineBenchResult(repeats=repeats, cells=cells)


def _format_cell(cell: EngineCell) -> str:
    per = {engine: f"{cell.seconds[engine] * 1000:9.3f}"
           for engine in ENGINES}
    return (f"{cell.workload:5s} {cell.case:4s} {cell.size:22s} "
            f"{cell.strategy:5s} {per['materializing']} "
            f"{per['pipelined']} {per['vectorized']} "
            f"{cell.vectorized_speedup:6.1f}x "
            f"[{cell.vectorized_nodes}c/{cell.row_fallback_nodes}r]")


def format_engine_bench(result: EngineBenchResult) -> str:
    lines = [
        "workload case size                   strat "
        "   mat ms   pipe ms    vec ms  vec/pipe [plan]",
    ]
    lines += [_format_cell(cell) for cell in result.cells]
    lines += [
        f"geomean vectorized vs pipelined      "
        f"{result.vectorized_speedup:6.2f}x",
        f"geomean vectorized vs materializing  "
        f"{result.vectorized_vs_materializing:6.2f}x",
    ]
    return "\n".join(lines)
