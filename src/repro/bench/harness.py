"""Timing harness with per-case timeouts.

The paper excludes runs over six hours; at reproduction scale the
equivalent is a per-case wall-clock budget enforced with ``SIGALRM``
(the executor is pure Python, so the alarm interrupts it cleanly).

The query-timing helpers accept either the legacy
:class:`~repro.db.Database` facade or a :class:`~repro.api.Connection`;
both run the *uncached* planning path (``provenance()`` / ``sql()``), so
figure measurements are never contaminated by the plan cache.
:func:`time_prepared_query` times the cached-plan path explicitly, for the
prepared-statement micro-benchmark.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass
from typing import Sequence, Union

from ..api import Connection
from ..db import Database

Session = Union[Database, Connection]


class Timeout(Exception):
    """A benchmark case exceeded its wall-clock budget."""


@dataclass
class BenchResult:
    """Outcome of one timed query execution."""

    seconds: float | None          # None when timed out
    rows: int | None
    timed_out: bool = False

    @property
    def label(self) -> str:
        if self.timed_out:
            return "timeout"
        return f"{self.seconds:.3f}s"


def _alarm_handler(signum, frame):  # pragma: no cover - signal plumbing
    raise Timeout()


def run_with_timeout(fn, timeout_s: float | None) -> BenchResult:
    """Call *fn* (returning a relation) under a wall-clock budget."""
    if timeout_s is None:
        start = time.perf_counter()
        relation = fn()
        return BenchResult(time.perf_counter() - start, len(relation.rows))
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        start = time.perf_counter()
        relation = fn()
        elapsed = time.perf_counter() - start
        return BenchResult(elapsed, len(relation.rows))
    except Timeout:
        return BenchResult(None, None, timed_out=True)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def time_provenance_query(db: Session, sql: str, strategy: str,
                          timeout_s: float | None = None) -> BenchResult:
    """Time one provenance query under *strategy* (uncached planning)."""
    return run_with_timeout(
        lambda: db.provenance(sql, strategy=strategy), timeout_s)


def time_plain_query(db: Session, sql: str,
                     timeout_s: float | None = None) -> BenchResult:
    """Time the original (non-provenance) query, as a baseline."""
    return run_with_timeout(lambda: db.sql(sql), timeout_s)


def time_prepared_query(conn: Connection, sql: str,
                        strategy: str | None = None,
                        params: Sequence = (),
                        timeout_s: float | None = None) -> BenchResult:
    """Time one execution of *sql* through a prepared statement.

    The statement is prepared (and its plan cached) outside the timed
    section, so the measurement covers only bind + execute — the steady
    state of a repeatedly executed prepared statement.
    """
    statement = conn.prepare(sql, strategy=strategy)
    return run_with_timeout(lambda: statement.execute(params), timeout_s)
