"""Semantic analysis: SQL AST -> algebra tree.

Responsibilities:

* **Name resolution.**  Every FROM item's columns get unique internal names
  (``alias.column``); expression ``Col`` nodes are resolved to those names
  with the correct correlation ``level`` (number of sublink boundaries
  crossed).  The final projection renames to user-facing labels.

* **Normalization for the provenance rewriter.**  Aggregation is planned as
  ``Project_labels(Select_having(Aggregate(Project_pre(input))))`` — the
  pre-projection computes grouping expressions and aggregate arguments as
  columns, so sublinks in GROUP BY / aggregate arguments / HAVING end up in
  plain projections and selections (exactly the paper's simulation of
  sublinks in those clauses, Section 2.2).  Join conditions containing
  sublinks become selections over cross products.

* **Views** are macro-expanded at reference time, so provenance tracking
  reaches through them (how TPC-H Q15 is handled).
"""

from __future__ import annotations

from typing import Any

from ..catalog import Catalog
from ..errors import AnalyzerError
from ..datatypes import SQLType
from ..expressions.ast import (
    AggCall, Col, Const, Expr, Sublink, SublinkKind, TRUE, transform,
)
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Limit, Operator, Project,
    Select, SetOp, SetOpKind, Sort, SortKey, Values,
)
from ..algebra.properties import contains_sublinks
from ..schema import Attribute, Schema, disambiguate
from .ast import (
    JoinExpr, OrderItem, SelectItem, SelectStmt, Star, SubqueryRef,
    TableRef,
)

_SET_OP_KINDS = {
    "union": SetOpKind.UNION,
    "intersect": SetOpKind.INTERSECT,
    "except": SetOpKind.EXCEPT,
}


class Scope:
    """One query level's visible columns, chained to enclosing levels."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.entries: list[tuple[str | None, str, str]] = []
        # (qualifier, sql-visible name, unique internal name)

    def add(self, qualifier: str | None, sql_name: str,
            unique_name: str) -> None:
        self.entries.append((qualifier, sql_name, unique_name))

    def add_all(self, entries) -> None:
        self.entries.extend(entries)

    def resolve(self, raw: str) -> tuple[str, int]:
        """Resolve a raw (possibly qualified) column name to its unique
        internal name and correlation level.

        A name containing a dot is first matched *literally* against the
        visible column names (quoted identifiers like ``"r.a"``, which the
        deparser emits) and only then split into qualifier + column.
        """
        qualifier, _, column = raw.rpartition(".")
        scope: Scope | None = self
        level = 0
        while scope is not None:
            matches = [
                unique for (_, sql_name, unique) in scope.entries
                if sql_name == raw]
            if not matches:
                matches = [
                    unique for (entry_qualifier, sql_name, unique)
                    in scope.entries
                    if sql_name == column
                    and (not qualifier or entry_qualifier == qualifier)]
            if len(matches) == 1:
                return matches[0], level
            if len(matches) > 1:
                raise AnalyzerError(f"ambiguous column reference {raw!r}")
            scope = scope.parent
            level += 1
        raise AnalyzerError(f"unknown column {raw!r}")


class Analyzer:
    """Analyzes parsed SELECT statements against a catalog (and views).

    Views default to the catalog's own registry
    (:attr:`repro.catalog.Catalog.views`); pass an explicit mapping only to
    override it (e.g. to analyze against a hypothetical namespace).
    """

    def __init__(self, catalog: Catalog,
                 views: dict[str, SelectStmt] | None = None):
        self.catalog = catalog
        self.views = views if views is not None \
            else getattr(catalog, "views", {})
        self._core_scope: Scope | None = None

    # -- entry point -----------------------------------------------------------

    def analyze(self, stmt: SelectStmt,
                outer: Scope | None = None) -> Operator:
        """Analyze a full SELECT (set ops, ORDER BY, LIMIT included)."""
        plan = self._analyze_core(stmt, outer)
        hidden_sort_allowed = not stmt.set_ops and not stmt.distinct \
            and not stmt.group_by and self._core_scope is not None
        core_scope = self._core_scope
        for op_name, all_flag, rhs_stmt in stmt.set_ops:
            if rhs_stmt.provenance:
                raise AnalyzerError(
                    "PROVENANCE is only allowed on the first branch of a "
                    "set operation")
            rhs = self._analyze_core(rhs_stmt, outer)
            if len(rhs.schema) != len(plan.schema):
                raise AnalyzerError(
                    f"{op_name.upper()} branches have different numbers of "
                    f"columns ({len(plan.schema)} vs {len(rhs.schema)})")
            plan = SetOp(_SET_OP_KINDS[op_name], plan, rhs, all=all_flag)
        if stmt.order_by:
            try:
                plan = Sort(plan, self._order_keys(stmt.order_by, plan))
            except AnalyzerError:
                if not hidden_sort_allowed:
                    raise
                plan = self._hidden_sort(plan, stmt, core_scope)
        if stmt.limit is not None or stmt.offset:
            plan = Limit(plan, stmt.limit, stmt.offset)
        return plan

    def _hidden_sort(self, plan: Operator, stmt: SelectStmt,
                     scope: Scope) -> Operator:
        """ORDER BY over non-output expressions (standard SQL): extend
        the final projection with hidden key columns, sort, re-project.

        Only for simple cores (no DISTINCT / GROUP BY / set ops), where
        the sort keys can still see the FROM scope."""
        if not isinstance(plan, Project):
            raise AnalyzerError(
                "ORDER BY keys must be output column labels or ordinals")
        labels = list(plan.schema.names)
        taken = set(labels)
        items = list(plan.items)
        keys: list[SortKey] = []
        for item in stmt.order_by:
            expr = item.expr
            if isinstance(expr, Const) and isinstance(expr.value, int):
                if not 1 <= expr.value <= len(labels):
                    raise AnalyzerError(
                        f"ORDER BY position {expr.value} out of range")
                keys.append(SortKey(Col(labels[expr.value - 1]),
                                    item.ascending))
                continue
            if isinstance(expr, Col):
                name = expr.name.rpartition(".")[2]
                if name in labels:
                    keys.append(SortKey(Col(name), item.ascending))
                    continue
            analyzed = self._analyze_expr(expr, scope)
            if _has_aggregate(analyzed):
                raise AnalyzerError(
                    "aggregates in ORDER BY must appear in the select "
                    "list")
            hidden = disambiguate("order_key", taken)
            items.append((hidden, analyzed))
            keys.append(SortKey(Col(hidden), item.ascending))
        extended = Project(plan.input, items)
        sorted_plan = Sort(extended, keys)
        final_items = [(label, Col(label)) for label in labels]
        return Project(sorted_plan, final_items)

    def _order_keys(self, order_by: list[OrderItem],
                    plan: Operator) -> list[SortKey]:
        labels = plan.schema.names
        keys = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, Const) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(labels):
                    raise AnalyzerError(
                        f"ORDER BY position {position} out of range")
                keys.append(SortKey(Col(labels[position - 1]),
                                    item.ascending))
                continue
            if isinstance(expr, Col):
                name = expr.name.rpartition(".")[2]
                if name in labels:
                    keys.append(SortKey(Col(name), item.ascending))
                    continue
            raise AnalyzerError(
                "ORDER BY keys must be output column labels or ordinals "
                f"(got {expr!r})")
        return keys

    # -- one SELECT core ----------------------------------------------------------

    def _analyze_core(self, stmt: SelectStmt,
                      outer: Scope | None) -> Operator:
        if stmt.provenance and outer is not None:
            raise AnalyzerError(
                "SELECT PROVENANCE is only supported at the top level")
        scope = Scope(outer)
        plan = self._analyze_from(stmt.from_items, scope, outer)

        if stmt.where is not None:
            condition = self._analyze_expr(stmt.where, scope)
            plan = Select(plan, condition)

        analyzed_items = self._expand_items(stmt.items, scope)
        having = (self._analyze_expr(stmt.having, scope)
                  if stmt.having is not None else None)

        needs_aggregation = bool(stmt.group_by) or any(
            _has_aggregate(expr) for _, expr in analyzed_items) or (
            having is not None and _has_aggregate(having))
        if needs_aggregation:
            plan, analyzed_items, having = self._plan_aggregation(
                stmt, scope, plan, analyzed_items, having)
        elif having is not None:
            raise AnalyzerError("HAVING requires GROUP BY or aggregates")

        if having is not None:
            plan = Select(plan, having)

        labels = self._assign_labels(stmt.items, analyzed_items)
        items = [(label, expr)
                 for label, (_, expr) in zip(labels, analyzed_items)]
        self._core_scope = scope
        return Project(plan, items, distinct=stmt.distinct)

    # -- FROM clause ------------------------------------------------------------

    def _analyze_from(self, from_items: list, scope: Scope,
                      outer: Scope | None) -> Operator:
        if not from_items:
            return Values(Schema([]), [()])
        aliases: set[str] = set()
        plan: Operator | None = None
        for item in from_items:
            item_plan, entries = self._from_item(item, aliases, outer)
            scope.add_all(entries)
            plan = item_plan if plan is None else \
                Join(plan, item_plan, TRUE, JoinKind.CROSS)
        return plan

    def _from_item(self, item: Any, aliases: set[str],
                   outer: Scope | None
                   ) -> tuple[Operator, list[tuple[str, str, str]]]:
        if isinstance(item, TableRef):
            return self._table_ref(item, aliases)
        if isinstance(item, SubqueryRef):
            return self._subquery_ref(item, aliases)
        if isinstance(item, JoinExpr):
            return self._join_expr(item, aliases, outer)
        raise AnalyzerError(f"unsupported FROM item {item!r}")

    def _register_alias(self, alias: str, aliases: set[str]) -> str:
        if alias in aliases:
            raise AnalyzerError(
                f"duplicate table alias {alias!r} in FROM clause")
        aliases.add(alias)
        return alias

    def _table_ref(self, item: TableRef, aliases: set[str]):
        alias = self._register_alias(item.alias or item.name, aliases)
        if item.name in self.views:
            view_plan = self.analyze(self.views[item.name], outer=None)
            return self._wrap_derived(view_plan, alias)
        stored = self.catalog.get(item.name)
        attributes = [
            Attribute(f"{alias}.{attr.name}", attr.type)
            for attr in stored.schema]
        plan = BaseRelation(item.name, alias, Schema(attributes))
        entries = [(alias, attr.name, f"{alias}.{attr.name}")
                   for attr in stored.schema]
        return plan, entries

    def _subquery_ref(self, item: SubqueryRef, aliases: set[str]):
        alias = self._register_alias(item.alias, aliases)
        if item.query.provenance:
            raise AnalyzerError(
                "SELECT PROVENANCE is only supported at the top level")
        # Derived tables are uncorrelated (no LATERAL support).
        sub_plan = self.analyze(item.query, outer=None)
        return self._wrap_derived(sub_plan, alias)

    def _wrap_derived(self, sub_plan: Operator, alias: str):
        items = [(f"{alias}.{label}", Col(label))
                 for label in sub_plan.schema.names]
        plan = Project(sub_plan, items)
        entries = [(alias, label, f"{alias}.{label}")
                   for label in sub_plan.schema.names]
        return plan, entries

    def _join_expr(self, item: JoinExpr, aliases: set[str],
                   outer: Scope | None):
        left_plan, left_entries = self._from_item(item.left, aliases, outer)
        right_plan, right_entries = self._from_item(
            item.right, aliases, outer)
        entries = left_entries + right_entries
        if item.kind == "cross" or item.condition is None:
            return (Join(left_plan, right_plan, TRUE, JoinKind.CROSS),
                    entries)
        local = Scope(outer)
        local.add_all(entries)
        condition = self._analyze_expr(item.condition, local)
        if contains_sublinks(condition) and item.kind != "left":
            # normalize so the provenance rewriter sees sublinks only in
            # selections; LEFT JOIN keeps them (executable, but the
            # rewriter will reject computing provenance through them)
            return (Select(Join(left_plan, right_plan, TRUE,
                                JoinKind.CROSS), condition), entries)
        kind = JoinKind.LEFT if item.kind == "left" else JoinKind.INNER
        return Join(left_plan, right_plan, condition, kind), entries

    # -- select list ---------------------------------------------------------------

    def _expand_items(self, items: list[SelectItem], scope: Scope
                      ) -> list[tuple[SelectItem, Expr]]:
        expanded: list[tuple[SelectItem, Expr]] = []
        for item in items:
            if isinstance(item.expr, Star):
                qualifier = item.expr.qualifier
                matched = False
                for entry_qualifier, sql_name, unique in scope.entries:
                    if qualifier is None or entry_qualifier == qualifier:
                        matched = True
                        expanded.append(
                            (SelectItem(Col(sql_name), None), Col(unique)))
                if not matched:
                    raise AnalyzerError(
                        f"no columns match {qualifier or ''}.*")
                continue
            expanded.append((item, self._analyze_expr(item.expr, scope)))
        return expanded

    def _assign_labels(self, raw_items: list[SelectItem],
                       analyzed: list[tuple[SelectItem, Expr]]) -> list[str]:
        taken: set[str] = set()
        labels = []
        for position, (item, expr) in enumerate(analyzed):
            if item.alias:
                label = item.alias
            elif isinstance(item.expr, Col):
                label = item.expr.name.rpartition(".")[2]
            elif isinstance(item.expr, (AggCall,)):
                label = item.expr.name
            elif hasattr(item.expr, "name") and isinstance(
                    getattr(item.expr, "name"), str):
                label = getattr(item.expr, "name")
            else:
                label = f"col{position + 1}"
            labels.append(disambiguate(label, taken))
        return labels

    # -- aggregation --------------------------------------------------------------------

    def _plan_aggregation(self, stmt: SelectStmt, scope: Scope,
                          plan: Operator,
                          analyzed_items: list[tuple[SelectItem, Expr]],
                          having: Expr | None):
        taken = set(plan.schema.names)
        group_exprs = [self._analyze_expr(g, scope) for g in stmt.group_by]

        pre_items: list[tuple[str, Expr]] = [
            (name, Col(name)) for name in plan.schema.names]
        group_columns: list[str] = []
        group_replacements: list[tuple[Expr, str]] = []
        for position, expr in enumerate(group_exprs):
            if isinstance(expr, Col) and expr.level == 0:
                group_columns.append(expr.name)
                continue
            name = disambiguate(f"group_{position}", taken)
            pre_items.append((name, expr))
            group_columns.append(name)
            group_replacements.append((expr, name))

        # Collect aggregate calls from the select items and HAVING,
        # normalizing arguments into pre-projection columns.
        agg_outputs: list[tuple[str, AggCall]] = []
        agg_keys: dict[tuple, str] = {}

        def normalize_agg(call: AggCall) -> str:
            arg_key: tuple
            arg: Expr | None
            if call.arg is None:
                arg = None
                arg_key = ("*",)
            elif isinstance(call.arg, Col) and call.arg.level == 0:
                arg = call.arg
                arg_key = ("col", call.arg.name)
            else:
                existing = next(
                    (name for name, expr in pre_items
                     if expr == call.arg and not isinstance(expr, Col)),
                    None)
                if existing is None:
                    existing = disambiguate(
                        f"aggarg_{len(pre_items)}", taken)
                    pre_items.append((existing, call.arg))
                arg = Col(existing)
                arg_key = ("col", existing)
            key = (call.name, call.distinct, arg_key)
            if key not in agg_keys:
                name = disambiguate(f"agg_{len(agg_outputs)}", taken)
                agg_keys[key] = name
                agg_outputs.append(
                    (name, AggCall(call.name, arg, call.distinct)))
            return agg_keys[key]

        def rewrite_expr(expr: Expr) -> Expr:
            for target, column in group_replacements:
                if expr == target:
                    return Col(column)

            def rule(node: Expr) -> Expr | None:
                if isinstance(node, AggCall):
                    return Col(normalize_agg(node))
                for target, column in group_replacements:
                    if node == target:
                        return Col(column)
                return None

            return transform(expr, rule)

        new_items = [(item, rewrite_expr(expr))
                     for item, expr in analyzed_items]
        new_having = rewrite_expr(having) if having is not None else None

        pre_plan = Project(plan, pre_items) \
            if len(pre_items) > len(plan.schema) else plan
        aggregate = Aggregate(pre_plan, group_columns, agg_outputs)

        self._validate_grouped(
            [expr for _, expr in new_items]
            + ([new_having] if new_having is not None else []),
            aggregate.schema)
        return aggregate, new_items, new_having

    def _validate_grouped(self, exprs: list[Expr],
                          schema: Schema) -> None:
        for expr in exprs:
            for node in _walk_level0(expr):
                if node.name not in schema:
                    raise AnalyzerError(
                        f"column {node.name!r} must appear in GROUP BY or "
                        f"be used in an aggregate function")

    # -- expressions -----------------------------------------------------------------------

    def analyze_expression(self, expr: Expr, schema: Schema,
                           qualifier: str | None = None) -> Expr:
        """Resolve a standalone expression against *schema*'s columns.

        The public entry point for analyzing expressions outside a full
        SELECT — e.g. a ``DELETE ... WHERE`` condition.  Columns resolve by
        bare name, or as ``qualifier.name`` when *qualifier* is given.
        Sublinks in *expr* are analyzed with the schema's columns visible
        as the (only) outer scope.
        """
        scope = Scope()
        for attr in schema:
            scope.add(qualifier, attr.name, attr.name)
        return self._analyze_expr(expr, scope)

    def _analyze_expr(self, expr: Expr, scope: Scope) -> Expr:
        def rule(node: Expr) -> Expr | None:
            if isinstance(node, Col):
                unique, level = scope.resolve(node.name)
                return Col(unique, level)
            if isinstance(node, Sublink):
                return self._analyze_sublink(node, scope)
            if isinstance(node, AggCall) and node.arg is not None and \
                    _has_aggregate_strict(node.arg):
                raise AnalyzerError(
                    "aggregate calls cannot be nested")
            return None

        return transform(expr, rule)

    def _analyze_sublink(self, node: Sublink, scope: Scope) -> Sublink:
        if not isinstance(node.query, SelectStmt):
            return node  # already analyzed (algebra-level construction)
        if node.query.provenance:
            raise AnalyzerError(
                "SELECT PROVENANCE is only supported at the top level")
        query_plan = self.analyze(node.query, outer=scope)
        if node.kind != SublinkKind.EXISTS and len(query_plan.schema) != 1:
            raise AnalyzerError(
                f"{node.kind.name} sublink queries must return exactly one "
                f"column (got {len(query_plan.schema)})")
        # node.test was already column-resolved by the surrounding
        # transform's bottom-up order.
        return Sublink(node.kind, query_plan, node.op, node.test)


def _walk_level0(expr: Expr):
    """Level-0 column references, skipping sublink query internals (where
    level-0 means the sublink's own scope)."""
    if isinstance(expr, Col) and expr.level == 0:
        yield expr
    for child in expr.children():
        yield from _walk_level0(child)


def _has_aggregate(expr: Expr) -> bool:
    if isinstance(expr, AggCall):
        return True
    return any(_has_aggregate(child) for child in expr.children())


def _has_aggregate_strict(expr: Expr) -> bool:
    return _has_aggregate(expr)
