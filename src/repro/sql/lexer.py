"""SQL tokenizer.

Hand-written single-pass lexer producing :class:`Token` objects with
line/column positions for error reporting.  Keywords are case-insensitive;
identifiers are lower-cased (quoted identifiers ``"Like This"`` preserve
case).  String literals use single quotes with ``''`` escaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import SQLSyntaxError


class TokenKind(Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = {
    "select", "provenance", "distinct", "from", "where", "group", "by",
    "having", "order", "limit", "offset", "as", "on", "join", "inner",
    "left", "right", "outer", "cross", "union", "intersect", "except",
    "all", "any", "some", "exists", "in", "like", "between", "is", "not",
    "and", "or", "null", "true", "false", "case", "when", "then", "else",
    "end", "cast", "asc", "desc", "insert", "into", "values", "create",
    "table", "view", "drop", "delete", "update", "set", "index",
    "unique", "using", "analyze", "begin", "commit", "rollback",
    "transaction", "work", "checkpoint",
}

_MULTI_OPERATORS = ("<>", "<=", ">=", "!=", "||")
_SINGLE_OPERATORS = "=<>+-*/%"
_PUNCT = "(),.;?"


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - error messages
        if self.kind == TokenKind.END:
            return "end of input"
        return repr(self.value)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    line, column = 1, 1
    position = 0
    length = len(text)

    def error(message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, line, column)

    while position < length:
        char = text[position]
        # whitespace
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        # comments
        if text.startswith("--", position):
            end = text.find("\n", position)
            position = length if end < 0 else end
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position)
            if end < 0:
                raise error("unterminated block comment")
            skipped = text[position:end + 2]
            line += skipped.count("\n")
            position = end + 2
            continue
        start_line, start_column = line, column
        # strings
        if char == "'":
            position += 1
            column += 1
            pieces = []
            while True:
                if position >= length:
                    raise error("unterminated string literal")
                if text[position] == "'":
                    if position + 1 < length and text[position + 1] == "'":
                        pieces.append("'")
                        position += 2
                        column += 2
                        continue
                    position += 1
                    column += 1
                    break
                if text[position] == "\n":
                    line += 1
                    column = 0
                pieces.append(text[position])
                position += 1
                column += 1
            tokens.append(Token(TokenKind.STRING, "".join(pieces),
                                start_line, start_column))
            continue
        # quoted identifiers
        if char == '"':
            end = text.find('"', position + 1)
            if end < 0:
                raise error("unterminated quoted identifier")
            value = text[position + 1:end]
            column += end - position + 1
            position = end + 1
            tokens.append(Token(TokenKind.IDENT, value,
                                start_line, start_column))
            continue
        # numbers
        if char.isdigit() or (char == "." and position + 1 < length
                              and text[position + 1].isdigit()):
            end = position
            seen_dot = False
            seen_exp = False
            while end < length:
                c = text[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end > position:
                    nxt = text[end + 1:end + 2]
                    if nxt.isdigit() or (nxt in "+-"
                                         and text[end + 2:end + 3].isdigit()):
                        seen_exp = True
                        end += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            value = text[position:end]
            column += end - position
            position = end
            tokens.append(Token(TokenKind.NUMBER, value,
                                start_line, start_column))
            continue
        # identifiers / keywords
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end].lower()
            column += end - position
            position = end
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, start_line, start_column))
            continue
        # multi-char operators
        matched = False
        for op in _MULTI_OPERATORS:
            if text.startswith(op, position):
                value = "<>" if op == "!=" else op
                tokens.append(Token(TokenKind.OPERATOR, value,
                                    start_line, start_column))
                position += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_OPERATORS:
            tokens.append(Token(TokenKind.OPERATOR, char,
                                start_line, start_column))
            position += 1
            column += 1
            continue
        if char in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, char,
                                start_line, start_column))
            position += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenKind.END, "", line, column))
    return tokens
