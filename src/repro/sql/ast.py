"""SQL statement AST.

Scalar expressions reuse :mod:`repro.expressions.ast` node classes — the
parser emits them with *unresolved* column names (``Col("alias.col")`` or
``Col("col")``, always ``level=0``) and with :class:`Sublink` nodes whose
``query`` attribute holds a :class:`SelectStmt` rather than an algebra
tree.  The analyzer resolves names to unique attribute names with proper
correlation levels and replaces sublink queries with algebra trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..expressions.ast import Expr


@dataclass
class Star:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expr | Star
    alias: str | None = None


@dataclass
class TableRef:
    """``FROM name [AS alias]`` — a base table or view reference."""

    name: str
    alias: str | None = None


@dataclass
class SubqueryRef:
    """``FROM (SELECT ...) AS alias``."""

    query: "SelectStmt"
    alias: str = "subquery"


@dataclass
class JoinExpr:
    """Explicit JOIN syntax; ``kind`` is ``cross``/``inner``/``left``."""

    kind: str
    left: Any
    right: Any
    condition: Expr | None = None


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass
class SelectStmt:
    """A (possibly compound) SELECT statement.

    ``set_ops`` chains further select cores onto this one:
    ``[(op, all, stmt), ...]`` with op in ``union``/``intersect``/``except``.
    ``provenance`` is None, or a strategy name (``"auto"`` when the SQL just
    says ``SELECT PROVENANCE``).
    """

    items: list[SelectItem] = field(default_factory=list)
    from_items: list[Any] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    distinct: bool = False
    provenance: str | None = None
    set_ops: list[tuple[str, bool, "SelectStmt"]] = field(
        default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    param_count: int = 0  # number of ? placeholders (set on the top level)


@dataclass
class CreateTableStmt:
    """``CREATE TABLE name (col type, ...)
    [PARTITION BY HASH(col) PARTITIONS n]``."""

    name: str
    columns: list[tuple[str, str]]  # (name, type text)
    partition_by: str | None = None   # hash-partitioning column
    partitions: int = 0               # partition count (0 = unpartitioned)


@dataclass
class CreateViewStmt:
    """``CREATE VIEW name AS SELECT ...``."""

    name: str
    query: SelectStmt


@dataclass
class InsertStmt:
    """``INSERT INTO name VALUES (...), (...)`` (constant expressions)."""

    table: str
    rows: list[list[Expr]]
    param_count: int = 0


@dataclass
class CreateIndexStmt:
    """``CREATE [UNIQUE] INDEX name ON table (column) [USING kind]``.

    ``kind`` is ``"hash"`` (the default — O(1) equality lookups) or
    ``"sorted"`` (equality and range lookups).
    """

    name: str
    table: str
    column: str
    unique: bool = False
    kind: str = "hash"


@dataclass
class AnalyzeStmt:
    """``ANALYZE [table]`` — collect planner statistics (all tables when
    no name is given)."""

    table: str | None = None


@dataclass
class DropStmt:
    """``DROP TABLE|VIEW|INDEX name``."""

    kind: str
    name: str


@dataclass
class DeleteStmt:
    """``DELETE FROM name [WHERE cond]``."""

    table: str
    where: Expr | None = None
    param_count: int = 0


@dataclass
class BeginStmt:
    """``BEGIN [TRANSACTION | WORK]`` — open an explicit transaction."""


@dataclass
class CommitStmt:
    """``COMMIT [TRANSACTION | WORK]`` — commit the open transaction."""


@dataclass
class RollbackStmt:
    """``ROLLBACK [TRANSACTION | WORK]`` — discard the open transaction."""


@dataclass
class CheckpointStmt:
    """``CHECKPOINT`` — compact the durable engine's write-ahead log
    into a fresh snapshot (requires ``Engine(path=...)``)."""


Statement = (SelectStmt | CreateTableStmt | CreateViewStmt
             | CreateIndexStmt | AnalyzeStmt | InsertStmt | DropStmt
             | DeleteStmt | BeginStmt | CommitStmt | RollbackStmt
             | CheckpointStmt)
