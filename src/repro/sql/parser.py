"""Recursive-descent SQL parser.

Grammar (simplified)::

    statement    := select | create_table | create_view | insert | drop
                    | delete
    select       := core (UNION [ALL] | INTERSECT | EXCEPT core)*
                    [ORDER BY order_items] [LIMIT n [OFFSET m]]
    core         := SELECT [PROVENANCE [(name)]] [DISTINCT] items
                    [FROM from_list] [WHERE expr]
                    [GROUP BY exprs] [HAVING expr]
    from_list    := from_item ("," from_item)*           -- comma = cross
    from_item    := primary_from (join_clause)*
    primary_from := name [[AS] alias] | "(" select ")" [AS] alias
    join_clause  := CROSS JOIN primary_from
                    | [INNER] JOIN primary_from ON expr
                    | LEFT [OUTER] JOIN primary_from ON expr

Expression precedence (loosest first): OR, AND, NOT, predicates
(comparison / IN / LIKE / BETWEEN / IS NULL, with ANY/ALL/EXISTS
sublinks), additive (``+ - ||``), multiplicative (``* / %``), unary minus,
primary.
"""

from __future__ import annotations

from ..errors import SQLSyntaxError
from ..expressions.ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, Expr,
    FuncCall, IsNull, Like, Neg, Not, Param, Sublink, SublinkKind, and_all,
    or_all,
)
from .ast import (
    AnalyzeStmt, BeginStmt, CheckpointStmt, CommitStmt, CreateIndexStmt,
    CreateTableStmt, CreateViewStmt, DeleteStmt, DropStmt, InsertStmt,
    JoinExpr, OrderItem, RollbackStmt, SelectItem, SelectStmt, Star,
    Statement, SubqueryRef, TableRef,
)
from .lexer import Token, TokenKind, tokenize

_AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max"}
_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}

#: Soft keywords: reserved only where their statements need them, still
#: usable as column/table names (``CREATE TABLE t (index int)`` keeps
#: parsing after the index/statistics DDL was added, and a column named
#: ``commit`` keeps parsing after the transaction statements were).
_SOFT_KEYWORDS = ("index", "unique", "using", "analyze", "begin",
                  "commit", "rollback", "transaction", "work",
                  "checkpoint")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0
        self.param_count = 0  # ? placeholders seen in the current statement

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def error(self, message: str) -> SQLSyntaxError:
        token = self.current
        return SQLSyntaxError(
            f"{message}, found {token}", token.line, token.column)

    def advance(self) -> Token:
        token = self.current
        if token.kind != TokenKind.END:
            self.position += 1
        return token

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise self.error(f"expected {' or '.join(names).upper()}")
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        token = self.current
        if token.kind == TokenKind.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise self.error(f"expected {value!r}")

    def expect_ident(self) -> str:
        token = self.current
        if token.kind == TokenKind.IDENT or token.is_keyword(
                *_SOFT_KEYWORDS):
            self.advance()
            return token.value
        raise self.error("expected identifier")

    def at_select(self) -> bool:
        return self.current.is_keyword("select")

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> Statement:
        self.param_count = 0
        statement = self._dispatch_statement()
        if self.param_count:
            if isinstance(statement,
                          (SelectStmt, InsertStmt, DeleteStmt)):
                statement.param_count = self.param_count
            else:
                raise self.error(
                    "? parameters are only allowed in SELECT, INSERT and "
                    "DELETE statements")
        return statement

    def _dispatch_statement(self) -> Statement:
        if self.at_select() or (self.current.kind == TokenKind.PUNCT
                                and self.current.value == "("):
            return self.parse_select()
        if self.current.is_keyword("create"):
            return self._parse_create()
        if self.current.is_keyword("insert"):
            return self._parse_insert()
        if self.current.is_keyword("drop"):
            return self._parse_drop()
        if self.current.is_keyword("delete"):
            return self._parse_delete()
        if self.current.is_keyword("analyze"):
            return self._parse_analyze()
        if self.current.is_keyword("begin", "commit", "rollback"):
            return self._parse_transaction()
        if self.current.is_keyword("checkpoint"):
            self.advance()
            return CheckpointStmt()
        raise self.error("expected a statement")

    def _parse_transaction(self) -> Statement:
        word = self.advance().value
        self.accept_keyword("transaction", "work")
        if word == "begin":
            return BeginStmt()
        if word == "commit":
            return CommitStmt()
        return RollbackStmt()

    def _parse_create(self) -> Statement:
        self.expect_keyword("create")
        if self.current.is_keyword("unique", "index"):
            return self._parse_create_index()
        if self.accept_keyword("table"):
            name = self.expect_ident()
            self.expect_punct("(")
            columns: list[tuple[str, str]] = []
            while True:
                column = self.expect_ident()
                type_parts: list[str] = []
                while not (self.current.kind == TokenKind.PUNCT
                           and self.current.value in ",)"):
                    if self.current.kind == TokenKind.PUNCT and \
                            self.current.value == "(":
                        # swallow "(n)" or "(n, m)" length arguments
                        depth = 0
                        while True:
                            token = self.advance()
                            if token.value == "(":
                                depth += 1
                            elif token.value == ")":
                                depth -= 1
                                if depth == 0:
                                    break
                        continue
                    if self.current.kind == TokenKind.END:
                        raise self.error("unterminated CREATE TABLE")
                    type_parts.append(self.advance().value)
                columns.append((column, " ".join(type_parts) or "any"))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            partition_by, partitions = self._parse_partition_clause()
            return CreateTableStmt(name, columns,
                                   partition_by=partition_by,
                                   partitions=partitions)
        self.expect_keyword("view")
        name = self.expect_ident()
        self.expect_keyword("as")
        return CreateViewStmt(name, self.parse_select())

    def _accept_word(self, word: str) -> bool:
        """Accept a *soft* word that lexes as an identifier (PARTITION,
        HASH, PARTITIONS are not reserved — they stay usable as names)."""
        token = self.current
        if token.kind == TokenKind.IDENT and token.value == word:
            self.advance()
            return True
        return False

    def _parse_partition_clause(self) -> tuple[str | None, int]:
        """Optional ``PARTITION BY HASH(col) PARTITIONS n`` after the
        column list of CREATE TABLE."""
        if not self._accept_word("partition"):
            return None, 0
        self.expect_keyword("by")
        if not self._accept_word("hash"):
            raise self.error("expected HASH (the only partitioning "
                             "scheme) after PARTITION BY")
        self.expect_punct("(")
        column = self.expect_ident()
        self.expect_punct(")")
        if not self._accept_word("partitions"):
            raise self.error("expected PARTITIONS after PARTITION BY "
                             "HASH(...)")
        token = self.current
        if token.kind != TokenKind.NUMBER or not token.value.isdigit():
            raise self.error("expected an integer partition count")
        self.advance()
        count = int(token.value)
        if count < 1:
            raise self.error("partition count must be >= 1")
        return column, count

    def _parse_insert(self) -> InsertStmt:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident()
        self.expect_keyword("values")
        rows: list[list[Expr]] = []
        while True:
            self.expect_punct("(")
            row = [self.parse_expr()]
            while self.accept_punct(","):
                row.append(self.parse_expr())
            self.expect_punct(")")
            rows.append(row)
            if not self.accept_punct(","):
                break
        return InsertStmt(table, rows)

    def _parse_create_index(self) -> CreateIndexStmt:
        unique = self.accept_keyword("unique")
        self.expect_keyword("index")
        name = self.expect_ident()
        self.expect_keyword("on")
        table = self.expect_ident()
        self.expect_punct("(")
        column = self.expect_ident()
        self.expect_punct(")")
        kind = "hash"
        if self.accept_keyword("using"):
            kind = self.expect_ident()
        return CreateIndexStmt(name, table, column, unique, kind)

    def _parse_analyze(self) -> AnalyzeStmt:
        self.expect_keyword("analyze")
        table = None
        if self.current.kind == TokenKind.IDENT or \
                self.current.is_keyword(*_SOFT_KEYWORDS):
            table = self.expect_ident()
        return AnalyzeStmt(table)

    def _parse_drop(self) -> DropStmt:
        self.expect_keyword("drop")
        kind = self.expect_keyword("table", "view", "index").value
        return DropStmt(kind, self.expect_ident())

    def _parse_delete(self) -> DeleteStmt:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("where") else None
        return DeleteStmt(table, where)

    # -- SELECT ---------------------------------------------------------------

    def parse_select(self) -> SelectStmt:
        stmt = self._parse_select_core()
        while self.current.is_keyword("union", "intersect", "except"):
            op = self.advance().value
            all_flag = self.accept_keyword("all")
            self.accept_keyword("distinct")
            stmt.set_ops.append((op, all_flag, self._parse_select_core()))
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            stmt.order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                stmt.order_by.append(self._parse_order_item())
        if self.accept_keyword("limit"):
            stmt.limit = int(self._expect_number())
        if self.accept_keyword("offset"):
            stmt.offset = int(self._expect_number())
        return stmt

    def _expect_number(self) -> str:
        token = self.current
        if token.kind != TokenKind.NUMBER:
            raise self.error("expected a number")
        self.advance()
        return token.value

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return OrderItem(expr, ascending)

    def _parse_select_core(self) -> SelectStmt:
        if self.accept_punct("("):
            stmt = self._parse_select_core()
            self.expect_punct(")")
            return stmt
        self.expect_keyword("select")
        stmt = SelectStmt()
        if self.accept_keyword("provenance"):
            stmt.provenance = "auto"
            if self.accept_punct("("):
                token = self.current
                if token.kind not in (TokenKind.IDENT, TokenKind.STRING,
                                      TokenKind.KEYWORD):
                    raise self.error("expected a strategy name")
                stmt.provenance = token.value
                self.advance()
                self.expect_punct(")")
        if self.accept_keyword("distinct"):
            stmt.distinct = True
        self.accept_keyword("all")
        stmt.items.append(self._parse_select_item())
        while self.accept_punct(","):
            stmt.items.append(self._parse_select_item())
        if self.accept_keyword("from"):
            stmt.from_items.append(self._parse_from_item())
            while self.accept_punct(","):
                stmt.from_items.append(self._parse_from_item())
        if self.accept_keyword("where"):
            stmt.where = self.parse_expr()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            stmt.group_by.append(self.parse_expr())
            while self.accept_punct(","):
                stmt.group_by.append(self.parse_expr())
        if self.accept_keyword("having"):
            stmt.having = self.parse_expr()
        return stmt

    def _parse_select_item(self) -> SelectItem:
        if self.current.kind == TokenKind.OPERATOR and \
                self.current.value == "*":
            self.advance()
            return SelectItem(Star())
        # alias.* requires two tokens of lookahead
        if (self.current.kind == TokenKind.IDENT
                and self.tokens[self.position + 1].value == "."
                and self.tokens[self.position + 2].value == "*"):
            qualifier = self.expect_ident()
            self.advance()  # "."
            self.advance()  # "*"
            return SelectItem(Star(qualifier))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == TokenKind.IDENT or \
                self.current.is_keyword(*_SOFT_KEYWORDS):
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    # -- FROM -------------------------------------------------------------------

    def _parse_from_item(self):
        item = self._parse_primary_from()
        while True:
            if self.accept_keyword("cross"):
                self.expect_keyword("join")
                right = self._parse_primary_from()
                item = JoinExpr("cross", item, right)
                continue
            if self.current.is_keyword("join", "inner", "left"):
                kind = "inner"
                if self.accept_keyword("left"):
                    kind = "left"
                    self.accept_keyword("outer")
                else:
                    self.accept_keyword("inner")
                self.expect_keyword("join")
                right = self._parse_primary_from()
                self.expect_keyword("on")
                condition = self.parse_expr()
                item = JoinExpr(kind, item, right, condition)
                continue
            return item

    def _parse_primary_from(self):
        if self.accept_punct("("):
            if self.at_select():
                query = self.parse_select()
                self.expect_punct(")")
                self.accept_keyword("as")
                alias = self.expect_ident()
                return SubqueryRef(query, alias)
            item = self._parse_from_item()
            self.expect_punct(")")
            return item
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == TokenKind.IDENT or \
                self.current.is_keyword(*_SOFT_KEYWORDS):
            alias = self.expect_ident()
        return TableRef(name, alias)

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        items = [self._parse_and()]
        while self.accept_keyword("or"):
            items.append(self._parse_and())
        return items[0] if len(items) == 1 else or_all(items)

    def _parse_and(self) -> Expr:
        items = [self._parse_not()]
        while self.accept_keyword("and"):
            items.append(self._parse_not())
        return items[0] if len(items) == 1 else and_all(items)

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self.current
        if token.kind == TokenKind.OPERATOR and \
                token.value in _COMPARISON_OPS:
            op = self.advance().value
            if self.current.is_keyword("any", "some", "all"):
                kind = SublinkKind.ALL if self.advance().value == "all" \
                    else SublinkKind.ANY
                self.expect_punct("(")
                query = self.parse_select()
                self.expect_punct(")")
                return Sublink(kind, query, op, left)
            return Comparison(op, left, self._parse_additive())
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            check = IsNull(left)
            return Not(check) if negated else check
        negated = self.accept_keyword("not")
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            check = and_all([Comparison(">=", left, low),
                             Comparison("<=", left, high)])
            return Not(check) if negated else check
        if self.accept_keyword("like"):
            check = Like(left, self._parse_additive())
            return Not(check) if negated else check
        if self.accept_keyword("in"):
            self.expect_punct("(")
            if self.at_select():
                query = self.parse_select()
                self.expect_punct(")")
                check = Sublink(SublinkKind.ANY, query, "=", left)
            else:
                values = [self.parse_expr()]
                while self.accept_punct(","):
                    values.append(self.parse_expr())
                self.expect_punct(")")
                check = or_all(
                    Comparison("=", left, value) for value in values)
            return Not(check) if negated else check
        if negated:
            raise self.error("expected BETWEEN, LIKE or IN after NOT")
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.current.kind == TokenKind.OPERATOR and \
                self.current.value in ("+", "-", "||"):
            op = self.advance().value
            left = Arith(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.current.kind == TokenKind.OPERATOR and \
                self.current.value in ("*", "/", "%"):
            op = self.advance().value
            left = Arith(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self.current.kind == TokenKind.OPERATOR and \
                self.current.value == "-":
            self.advance()
            return Neg(self._parse_unary())
        if self.current.kind == TokenKind.OPERATOR and \
                self.current.value == "+":
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind == TokenKind.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Const(float(text))
            return Const(int(text))
        if token.kind == TokenKind.STRING:
            self.advance()
            return Const(token.value)
        if token.is_keyword("null"):
            self.advance()
            return Const(None)
        if token.is_keyword("true"):
            self.advance()
            return Const(True)
        if token.is_keyword("false"):
            self.advance()
            return Const(False)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_keyword("cast"):
            self.advance()
            self.expect_punct("(")
            operand = self.parse_expr()
            self.expect_keyword("as")
            type_parts = [self.advance().value]
            while self.current.kind == TokenKind.IDENT:
                type_parts.append(self.advance().value)
            self.expect_punct(")")
            return Cast(operand, " ".join(type_parts))
        if token.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            query = self.parse_select()
            self.expect_punct(")")
            return Sublink(SublinkKind.EXISTS, query)
        if token.kind == TokenKind.PUNCT and token.value == "?":
            self.advance()
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if token.kind == TokenKind.PUNCT and token.value == "(":
            self.advance()
            if self.at_select():
                query = self.parse_select()
                self.expect_punct(")")
                return Sublink(SublinkKind.SCALAR, query)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind == TokenKind.IDENT or \
                token.is_keyword("left", "right", *_SOFT_KEYWORDS):
            return self._parse_identifier_expr()
        raise self.error("expected an expression")

    def _parse_case(self) -> Expr:
        self.expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            whens.append((condition, self.parse_expr()))
        default: Expr = Const(None)
        if self.accept_keyword("else"):
            default = self.parse_expr()
        self.expect_keyword("end")
        if not whens:
            raise self.error("CASE requires at least one WHEN branch")
        return Case(tuple(whens), default)

    def _parse_identifier_expr(self) -> Expr:
        name = self.advance().value
        # function call?
        if self.current.kind == TokenKind.PUNCT and \
                self.current.value == "(":
            self.advance()
            if name in _AGGREGATE_NAMES:
                return self._parse_aggregate_call(name)
            args: list[Expr] = []
            if not self.accept_punct(")"):
                args.append(self.parse_expr())
                while self.accept_punct(","):
                    args.append(self.parse_expr())
                self.expect_punct(")")
            return FuncCall(name, tuple(args))
        # qualified column?
        if self.accept_punct("."):
            column = self.expect_ident()
            return Col(f"{name}.{column}")
        return Col(name)

    def _parse_aggregate_call(self, name: str) -> Expr:
        if self.current.kind == TokenKind.OPERATOR and \
                self.current.value == "*":
            self.advance()
            self.expect_punct(")")
            return AggCall(name, None, False)
        distinct = self.accept_keyword("distinct")
        arg = self.parse_expr()
        self.expect_punct(")")
        return AggCall(name, arg, distinct)


def parse_statement(text: str) -> Statement:
    """Parse a single SQL statement (a trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.accept_punct(";")
    if parser.current.kind != TokenKind.END:
        raise parser.error("unexpected trailing input")
    return statement


def parse_statements(text: str) -> list[Statement]:
    """Parse a ``;``-separated script."""
    parser = _Parser(tokenize(text))
    statements: list[Statement] = []
    while parser.current.kind != TokenKind.END:
        statements.append(parser.parse_statement())
        while parser.accept_punct(";"):
            pass
    return statements
