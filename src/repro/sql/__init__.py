"""SQL frontend: lexer, parser, analyzer (SQL -> algebra), deparser."""

from .lexer import Token, TokenKind, tokenize
from .parser import parse_statement, parse_statements
from .analyzer import Analyzer

__all__ = [
    "Token", "TokenKind", "tokenize",
    "parse_statement", "parse_statements",
    "Analyzer",
]
