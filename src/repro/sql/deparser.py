"""Deparser: algebra trees back to executable SQL text.

Useful for debugging rewrites and for demonstrating the paper's central
claim that the rewritten query ``q+`` *is plain relational algebra / SQL*
— it can be printed, stored as a view, or fed to any engine.  The emitted
dialect is this package's own (round-trips through the parser, modulo
correlation levels, which SQL expresses by name scoping).

Limitations: correlated references (``Col`` with ``level >= 1``) are
emitted as bare column names and rely on SQL's name-based scoping, so a
rewrite that introduced *shadowed* names at different levels may not
round-trip; the rewriter's fresh-name discipline avoids this for its own
output.
"""

from __future__ import annotations

from ..datatypes import sql_literal
from ..errors import UnsupportedFeatureError
from ..expressions.ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, Expr,
    FuncCall, IsNull, Like, Neg, Not, NullSafeEq, Param, Sublink,
    SublinkKind, TRUE,
)
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Limit, Operator, Project,
    Select, SetOp, SetOpKind, Sort, Values,
)


def _quote(name: str) -> str:
    if name.replace("_", "").isalnum() and not name[0].isdigit() \
            and "." not in name:
        return name
    return '"' + name.replace('"', '""') + '"'


def deparse_expr(expr: Expr) -> str:
    """Render an expression as SQL text."""
    if isinstance(expr, Const):
        return sql_literal(expr.value)
    if isinstance(expr, Param):
        return "?"
    if isinstance(expr, Col):
        return _quote(expr.name)
    if isinstance(expr, Comparison):
        return (f"({deparse_expr(expr.left)} {expr.op} "
                f"{deparse_expr(expr.right)})")
    if isinstance(expr, NullSafeEq):
        left, right = deparse_expr(expr.left), deparse_expr(expr.right)
        return (f"(({left} = {right}) OR ({left} IS NULL AND {right} "
                f"IS NULL))")
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(deparse_expr(i) for i in expr.items) + ")"
    if isinstance(expr, Not):
        return f"(NOT {deparse_expr(expr.operand)})"
    if isinstance(expr, IsNull):
        return f"({deparse_expr(expr.operand)} IS NULL)"
    if isinstance(expr, Arith):
        return (f"({deparse_expr(expr.left)} {expr.op} "
                f"{deparse_expr(expr.right)})")
    if isinstance(expr, Neg):
        return f"(- {deparse_expr(expr.operand)})"
    if isinstance(expr, FuncCall):
        args = ", ".join(deparse_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Like):
        return (f"({deparse_expr(expr.operand)} LIKE "
                f"{deparse_expr(expr.pattern)})")
    if isinstance(expr, Cast):
        return f"CAST({deparse_expr(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, Case):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {deparse_expr(condition)} "
                         f"THEN {deparse_expr(value)}")
        parts.append(f"ELSE {deparse_expr(expr.default)} END")
        return " ".join(parts)
    if isinstance(expr, AggCall):
        if expr.arg is None:
            return f"{expr.name}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{deparse_expr(expr.arg)})"
    if isinstance(expr, Sublink):
        body = deparse(expr.query)
        if expr.kind == SublinkKind.EXISTS:
            return f"EXISTS ({body})"
        if expr.kind == SublinkKind.SCALAR:
            return f"({body})"
        return (f"({deparse_expr(expr.test)} {expr.op} "
                f"{expr.kind.name} ({body}))")
    raise UnsupportedFeatureError(
        f"cannot deparse expression {type(expr).__name__}")


def _derived(op: Operator, alias: str) -> str:
    return f"({deparse(op)}) AS {_quote(alias)}"


_ALIAS_COUNTER = [0]


def _fresh_alias() -> str:
    _ALIAS_COUNTER[0] += 1
    return f"dt_{_ALIAS_COUNTER[0]}"


def deparse(op: Operator) -> str:
    """Render an operator tree as a SQL SELECT statement."""
    if isinstance(op, BaseRelation):
        items = ", ".join(
            f"{_quote(src)} AS {_quote(out)}"
            for out, src in zip(op.schema.names,
                                _stored_names(op)))
        return f"SELECT {items} FROM {_quote(op.table)}"
    if isinstance(op, Values):
        return _deparse_values(op)
    if isinstance(op, Project):
        distinct = "DISTINCT " if op.distinct else ""
        items = ", ".join(
            f"{deparse_expr(expr)} AS {_quote(name)}"
            for name, expr in op.items)
        return (f"SELECT {distinct}{items} FROM "
                f"{_derived(op.input, _fresh_alias())}")
    if isinstance(op, Select):
        items = _reexport(op.schema.names)
        return (f"SELECT {items} FROM {_derived(op.input, _fresh_alias())} "
                f"WHERE {deparse_expr(op.condition)}")
    if isinstance(op, Join):
        items = _reexport(op.schema.names)
        left = _derived(op.left, _fresh_alias())
        right = _derived(op.right, _fresh_alias())
        if op.kind == JoinKind.CROSS and op.condition == TRUE:
            return f"SELECT {items} FROM {left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if op.kind == JoinKind.LEFT else "JOIN"
        return (f"SELECT {items} FROM {left} {keyword} {right} "
                f"ON {deparse_expr(op.condition)}")
    if isinstance(op, Aggregate):
        items = [f"{_quote(name)} AS {_quote(name)}" for name in op.group]
        items += [f"{deparse_expr(call)} AS {_quote(name)}"
                  for name, call in op.aggregates]
        group = f" GROUP BY {', '.join(_quote(g) for g in op.group)}" \
            if op.group else ""
        return (f"SELECT {', '.join(items)} FROM "
                f"{_derived(op.input, _fresh_alias())}{group}")
    if isinstance(op, SetOp):
        keyword = {
            SetOpKind.UNION: "UNION", SetOpKind.INTERSECT: "INTERSECT",
            SetOpKind.EXCEPT: "EXCEPT"}[op.kind]
        if op.all:
            keyword += " ALL"
        return f"({deparse(op.left)}) {keyword} ({deparse(op.right)})"
    if isinstance(op, Sort):
        keys = ", ".join(
            f"{deparse_expr(key.expr)} "
            f"{'ASC' if key.ascending else 'DESC'}" for key in op.keys)
        items = _reexport(op.schema.names)
        return (f"SELECT {items} FROM {_derived(op.input, _fresh_alias())} "
                f"ORDER BY {keys}")
    if isinstance(op, Limit):
        items = _reexport(op.schema.names)
        text = f"SELECT {items} FROM {_derived(op.input, _fresh_alias())}"
        if op.count is not None:
            text += f" LIMIT {op.count}"
        if op.offset:
            text += f" OFFSET {op.offset}"
        return text
    raise UnsupportedFeatureError(
        f"cannot deparse operator {type(op).__name__}")


def _reexport(names) -> str:
    """Explicit pass-through select list (never ``*`` — star expansion
    re-labels dotted names on re-parse)."""
    return ", ".join(f"{_quote(n)} AS {_quote(n)}" for n in names)


def _stored_names(op: BaseRelation) -> list[str]:
    """Best-effort source column names: strip alias qualification."""
    return [name.rsplit(".", 1)[-1] for name in op.schema.names]


def _deparse_values(op: Values) -> str:
    if not op.rows:
        # an empty relation: SELECT ... WHERE FALSE
        items = ", ".join(
            f"NULL AS {_quote(name)}" for name in op.schema.names)
        return f"SELECT {items} WHERE FALSE"
    selects = []
    for row in op.rows:
        items = ", ".join(
            f"{sql_literal(value)} AS {_quote(name)}"
            for value, name in zip(row, op.schema.names))
        selects.append(f"SELECT {items}")
    return " UNION ALL ".join(selects)
