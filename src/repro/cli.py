"""Interactive SQL shell (``python -m repro``).

A psql-flavoured REPL over an in-memory session
(:class:`~repro.api.Connection`):

=====================  ===================================================
command                effect
=====================  ===================================================
``\\d``                 list tables, views and indexes
``\\d <table>``         describe a table (columns, indexes, statistics)
``\\strategy [name]``   show / set the default provenance strategy
``\\explain <select>``  print the physical plan (after rewrite + lowering)
``\\stats [table]``     show collected planner statistics
``\\timing``            toggle per-query timing
``\\cache``             show plan-cache statistics
``\\tpch [scale]``      load a TPC-H instance into the session
``\\i <file>``          run a SQL script
``\\save [dir]``        checkpoint the durable database (or export the
                       in-memory session as a database directory)
``\\open <dir>``        open (or crash-recover) a durable database
``\\connect h:p [u]``   attach to a wire server (``python -m repro.serve``)
``\\disconnect``        detach from the server, back to the local session
``\\q``                 quit
=====================  ===================================================

While ``\\connect host:port [user[:password] [database]]`` is attached,
SQL goes to the remote server over the PostgreSQL wire protocol through
:class:`repro.client.SyncConnection` — transactions, errors and command
tags behave exactly as against a local session, and the prompt shows the
remote address.  Catalog meta commands (``\\d``, ``\\stats``, ...) keep
operating on the *local* session and say so.

SQL-level plan inspection mirrors PostgreSQL: ``EXPLAIN <select>``
prints the physical plan — with the cost model's estimated rows and
costs per node — without running it; ``EXPLAIN ANALYZE <select>``
executes the query and prints estimated-vs-actual rows plus batches /
loops / wall-clock time per operator.  ``ANALYZE [table]`` collects the
statistics those estimates come from, and ``CREATE [UNIQUE] INDEX name
ON table (column) [USING hash|sorted]`` / ``DROP INDEX name`` manage the
secondary indexes the cost-based planner may scan or probe.

Transactions work as in psql: ``BEGIN`` opens a snapshot-isolated
transaction (the prompt shows ``repro*>`` while one is open),
``COMMIT`` publishes it atomically and ``ROLLBACK`` discards it —
restoring tables, indexes and statistics to their pre-``BEGIN`` state.

Durability: ``\\open <dir>`` switches the session onto a durable engine
over that database directory (created, opened, or crash-recovered —
snapshot plus committed WAL suffix); from then on every commit is
write-ahead-logged per the session's ``durability`` config, and
``CHECKPOINT`` (or ``\\save``) compacts the log into a fresh snapshot.
``\\save <dir>`` from an in-memory session exports the current catalog
as a database directory that ``\\open`` can load later.

Everything else is executed as SQL (``SELECT PROVENANCE ...`` included)
through the session's plan cache, so repeating a query skips planning.
Start with ``python -m repro --strategy left`` to pick the default
strategy up front; names resolve through the strategy registry.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .api import Connection
from .db import Database
from .errors import ReproError
from .provenance import strategies


class Shell:
    """State and command dispatch for the REPL."""

    def __init__(self, db: Database | Connection | None = None):
        if isinstance(db, Connection):
            self.db = Database(db)
        else:
            self.db = db or Database()
        self.conn = self.db.connection
        self.timing = False
        #: wire connection while ``\connect``-ed to a server, else None
        self.remote = None
        self.remote_name = ""

    @property
    def strategy(self) -> str:
        return self.conn.config.default_strategy

    @strategy.setter
    def strategy(self, name: str) -> None:
        # Deliberately unvalidated: an unknown name surfaces as a query
        # error, matching the historic shell behaviour.
        self.conn.config.default_strategy = name

    # -- meta commands --------------------------------------------------------

    def run_meta(self, line: str, out) -> bool:
        """Handle a backslash command; returns False to quit."""
        parts = line.split()
        command, args = parts[0], parts[1:]
        if command in ("\\q", "\\quit"):
            self._disconnect(out, quiet=True)
            return False
        if self.remote is not None and command in (
                "\\d", "\\strategy", "\\explain", "\\stats", "\\cache",
                "\\tpch", "\\save", "\\open", "\\i"):
            print(f"(note: {command} operates on the local session, "
                  f"not {self.remote_name})", file=out)
        if command == "\\d":
            if args:
                self._describe(args[0], out)
            else:
                self._list_tables(out)
        elif command == "\\strategy":
            if args:
                self.strategy = args[0]
            print(f"provenance strategy: {self.strategy}", file=out)
        elif command == "\\timing":
            self.timing = not self.timing
            print(f"timing: {'on' if self.timing else 'off'}", file=out)
        elif command == "\\cache":
            stats = self.conn.plan_cache.stats()
            print(
                "plan cache: "
                f"{stats['size']}/{stats['capacity']} entries, "
                f"{stats['hits']} hits, {stats['misses']} misses",
                file=out)
        elif command == "\\explain":
            sql = line[len("\\explain"):].strip()
            print(self.conn.explain_physical(sql), file=out)
        elif command == "\\stats":
            self._show_stats(args[0] if args else None, out)
        elif command == "\\tpch":
            from .tpch import install_views, load_tpch
            scale = float(args[0]) if args else 0.0001
            generated = load_tpch(scale=scale)
            engine = self.conn.engine
            # exclusive() = commit barrier + write lock, in the
            # canonical order — taking the bare write lock here and
            # then checkpointing (which needs the barrier) would
            # invert the lock order against in-flight commits
            with engine.exclusive():
                for table in generated.catalog.names():
                    self.conn.catalog.register(
                        table, generated.catalog.get(table),
                        replace=True)
                if engine.storage is not None:
                    # register() bypasses the transactional WAL path;
                    # checkpointing inside the same hold (both locks
                    # are reentrant) makes the bulk load durable
                    # *before* the WAL-logged view commits below can
                    # reference the new tables
                    engine.checkpoint()
            install_views(self.conn)
            print(f"loaded TPC-H at scale {scale}", file=out)
        elif command == "\\i":
            if not args:
                print("usage: \\i <file>", file=out)
            else:
                with open(args[0]) as handle:
                    self.conn.execute_script(handle.read())
                print(f"ran {args[0]}", file=out)
        elif command == "\\save":
            self._save(args[0] if args else None, out)
        elif command == "\\open":
            if not args:
                print("usage: \\open <dir>", file=out)
            else:
                self._open(args[0], out)
        elif command == "\\connect":
            if not args:
                print("usage: \\connect host:port [user[:password] "
                      "[database]]", file=out)
            else:
                self._connect(args, out)
        elif command == "\\disconnect":
            self._disconnect(out)
        else:
            print(f"unknown command {command}; try \\d, \\strategy, "
                  f"\\explain, \\stats, \\timing, \\cache, \\tpch, \\i, "
                  f"\\save, \\open, \\connect, \\disconnect, \\q",
                  file=out)
        return True

    def _connect(self, args: list, out) -> None:
        """Attach the shell to a wire server; SQL then goes remote."""
        from .client import SyncConnection
        target = args[0]
        host, sep, port = target.rpartition(":")
        if not sep or not port.isdigit():
            print("usage: \\connect host:port [user[:password] "
                  "[database]]", file=out)
            return
        spec = args[1] if len(args) > 1 else "repro"
        user, has_password, password = spec.partition(":")
        database = args[2] if len(args) > 2 else None
        try:
            remote = SyncConnection(
                host or "127.0.0.1", int(port), user=user,
                password=password if has_password else None,
                database=database)
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=out)
            return
        self._disconnect(out, quiet=True)
        self.remote = remote
        self.remote_name = f"{host or '127.0.0.1'}:{port}"
        version = remote.parameters.get("server_version", "?")
        print(f"connected to {self.remote_name} as {user} "
              f"(server {version})", file=out)

    def _disconnect(self, out, quiet: bool = False) -> None:
        """Detach from the server; SQL goes to the local session again."""
        remote, self.remote = self.remote, None
        self.remote_name = ""
        if remote is not None:
            try:
                remote.close()
            except (ReproError, OSError):
                pass
            if not quiet:
                print("disconnected; back to the local session", file=out)
        elif not quiet:
            print("not connected to a server", file=out)

    def _save(self, path: str | None, out) -> None:
        """Checkpoint the durable engine, or export the in-memory
        catalog as a database directory."""
        engine = self.conn.engine
        try:
            if path is None or (engine.storage is not None
                                and os.path.realpath(engine.storage.path)
                                == os.path.realpath(path)):
                if engine.storage is None:
                    print("this session is in-memory; usage: "
                          "\\save <dir> (or \\open <dir> first)",
                          file=out)
                    return
                print(f"checkpointed {engine.checkpoint()}", file=out)
                return
            from .storage.store import save_database
            target = save_database(path, engine.snapshot())
            print(f"saved {target}", file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)

    def _open(self, path: str, out) -> None:
        """Switch the session onto a durable engine over *path*
        (creating or crash-recovering the database directory)."""
        from .api import Connection
        old = self.conn
        if old.in_transaction:
            print("a transaction is in progress; COMMIT or ROLLBACK "
                  "before \\open", file=out)
            return
        storage = old.engine.storage
        if storage is not None and \
                os.path.realpath(storage.path) == os.path.realpath(path):
            print(f"{path} is already open", file=out)
            return
        try:
            conn = Connection(old.config, path=path)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            return
        self.db = Database(conn)
        self.conn = conn
        old.close()
        names = conn.catalog.names()
        print(f"opened {path} ({len(names)} table(s))", file=out)

    def _list_tables(self, out) -> None:
        catalog = self.conn.catalog
        for name in catalog.names():
            rows = len(catalog.get(name).rows)
            analyzed = " (analyzed)" if catalog.stats.get(name) else ""
            print(f"  table {name} ({rows} rows){analyzed}", file=out)
        for name in catalog.view_names():
            print(f"  view  {name}", file=out)
        for name in catalog.index_names():
            print(f"  {catalog.get_index(name).describe()}", file=out)
        if not catalog.names() and not catalog.view_names():
            print("  (no tables)", file=out)

    def _describe(self, name: str, out) -> None:
        stored = self.conn.catalog.get(name)
        for attribute in stored.schema:
            print(f"  {attribute.name:24s} {attribute.type.value}",
                  file=out)
        for index in self.conn.catalog.indexes_on(name):
            print(f"  {index.describe()}", file=out)
        stats = self.conn.catalog.stats.get(name)
        if stats is not None:
            print(f"  analyzed: {stats.row_count} rows", file=out)

    def _show_stats(self, name: str | None, out) -> None:
        catalog = self.conn.catalog
        names = [name] if name else catalog.stats.tables()
        if not names:
            print("  (no statistics; run ANALYZE)", file=out)
            return
        for table in names:
            stats = catalog.stats.get(table)
            if stats is None:
                print(f"  {table}: not analyzed", file=out)
                continue
            print(f"  {table}: {stats.row_count} rows", file=out)
            for column in stats.columns.values():
                print(f"    {column.name:20s} n_distinct={column.n_distinct}"
                      f" null_frac={column.null_frac:.2f}"
                      f" min={column.min_value!r} max={column.max_value!r}",
                      file=out)

    # -- SQL ----------------------------------------------------------------------

    def run_sql(self, text: str, out) -> None:
        if self.remote is not None:
            self._run_remote_sql(text, out)
            return
        started = time.perf_counter()
        try:
            from .relation import Relation
            words = text.split(None, 2)
            head = words[0].upper() if words else ""
            if head == "EXPLAIN":
                if len(words) > 1 and words[1].upper() == "ANALYZE":
                    print(self.conn.explain_analyze(
                        words[2] if len(words) > 2 else ""), file=out)
                else:
                    sql = text.split(None, 1)[1] if len(words) > 1 else ""
                    print(self.conn.explain_physical(sql), file=out)
                return
            result = self.conn.execute(text)
            if isinstance(result, Relation):
                print(result.pretty(), file=out)
                print(f"({len(result.rows)} rows)", file=out)
            elif head in ("BEGIN", "COMMIT", "ROLLBACK", "CHECKPOINT"):
                print(head, file=out)     # psql-style command tags
            else:
                print("ok", file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            return
        if self.timing:
            elapsed = (time.perf_counter() - started) * 1000
            print(f"time: {elapsed:.1f} ms", file=out)

    def _run_remote_sql(self, text: str, out) -> None:
        """Send *text* to the attached server via the simple query
        protocol and render the per-statement results psql-style."""
        started = time.perf_counter()
        try:
            results = self.remote.query(text)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            if self.remote is not None and self.remote.closed:
                self._disconnect(out)
            return
        except OSError as exc:
            print(f"connection lost: {exc}", file=out)
            self._disconnect(out)
            return
        for result in results:
            if result.description is not None:
                self._print_table(result, out)
            print(result.tag or "ok", file=out)
        if self.timing:
            elapsed = (time.perf_counter() - started) * 1000
            print(f"time: {elapsed:.1f} ms", file=out)

    @staticmethod
    def _print_table(result, out) -> None:
        cells = [[("" if value is None else str(value))
                  for value in row] for row in result.rows]
        widths = [max([len(name)] + [len(row[i]) for row in cells])
                  for i, name in enumerate(result.columns)]
        print(" | ".join(name.ljust(width) for name, width
                         in zip(result.columns, widths)), file=out)
        print("-+-".join("-" * width for width in widths), file=out)
        for row in cells:
            print(" | ".join(cell.ljust(width) for cell, width
                             in zip(row, widths)), file=out)

    def run_line(self, line: str, out) -> bool:
        """Process one input line; returns False to quit."""
        stripped = line.strip()
        if not stripped:
            return True
        if stripped.startswith("\\"):
            return self.run_meta(stripped, out)
        self.run_sql(stripped.rstrip(";"), out)
        return True


def main(argv: list[str] | None = None) -> int:
    """REPL entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive SQL shell with provenance support.")
    parser.add_argument(
        "--strategy", default="auto",
        help="default provenance strategy (resolved through the strategy "
             f"registry; one of {', '.join(strategies.strategy_names())})")
    args = parser.parse_args(argv)
    if args.strategy != strategies.AUTO and \
            not strategies.is_registered(args.strategy):
        parser.error(
            f"unknown strategy {args.strategy!r}; expected one of "
            f"{', '.join(strategies.strategy_names())}")

    shell = Shell()
    shell.strategy = args.strategy
    print("repro — Provenance for Nested Subqueries (EDBT 2009 repro)")
    print('type SQL, "\\tpch" to load data, or "\\q" to quit')
    buffer: list[str] = []
    while True:
        # a psql-style "*" marks an open transaction
        if shell.remote is not None:
            mark = "*" if shell.remote.transaction_status in "TE" else ""
            base = shell.remote_name
        else:
            mark = "*" if shell.conn.in_transaction else ""
            base = "repro"
        prompt = f"{base}{mark}> " if not buffer else "  ...> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        if line.strip().startswith("\\"):
            if not shell.run_meta(line.strip(), sys.stdout):
                return 0
            continue
        buffer.append(line)
        if line.rstrip().endswith(";") or not line.strip():
            text = " ".join(buffer).strip()
            buffer.clear()
            if text and not shell.run_line(text, sys.stdout):
                return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
