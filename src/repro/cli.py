"""Interactive SQL shell (``python -m repro``).

A psql-flavoured REPL over an in-memory :class:`~repro.db.Database`:

=====================  ===================================================
command                effect
=====================  ===================================================
``\\d``                 list tables and views
``\\d <table>``         describe a table
``\\strategy [name]``   show / set the default provenance strategy
``\\explain <select>``  print the (rewritten) plan
``\\timing``            toggle per-query timing
``\\tpch [scale]``      load a TPC-H instance into the session
``\\i <file>``          run a SQL script
``\\q``                 quit
=====================  ===================================================

Everything else is executed as SQL (``SELECT PROVENANCE ...`` included).
"""

from __future__ import annotations

import sys
import time

from .db import Database
from .errors import ReproError


class Shell:
    """State and command dispatch for the REPL."""

    def __init__(self, db: Database | None = None):
        self.db = db or Database()
        self.strategy = "auto"
        self.timing = False

    # -- meta commands --------------------------------------------------------

    def run_meta(self, line: str, out) -> bool:
        """Handle a backslash command; returns False to quit."""
        parts = line.split()
        command, args = parts[0], parts[1:]
        if command in ("\\q", "\\quit"):
            return False
        if command == "\\d":
            if args:
                self._describe(args[0], out)
            else:
                self._list_tables(out)
        elif command == "\\strategy":
            if args:
                self.strategy = args[0]
            print(f"provenance strategy: {self.strategy}", file=out)
        elif command == "\\timing":
            self.timing = not self.timing
            print(f"timing: {'on' if self.timing else 'off'}", file=out)
        elif command == "\\explain":
            sql = line[len("\\explain"):].strip()
            print(self.db.explain(sql), file=out)
        elif command == "\\tpch":
            from .tpch import install_views, load_tpch
            scale = float(args[0]) if args else 0.0001
            generated = load_tpch(scale=scale)
            for table in generated.catalog.names():
                self.db.catalog.register(
                    table, generated.catalog.get(table), replace=True)
            install_views(self.db)
            print(f"loaded TPC-H at scale {scale}", file=out)
        elif command == "\\i":
            if not args:
                print("usage: \\i <file>", file=out)
            else:
                with open(args[0]) as handle:
                    self.db.execute_script(handle.read())
                print(f"ran {args[0]}", file=out)
        else:
            print(f"unknown command {command}; try \\d, \\strategy, "
                  f"\\explain, \\timing, \\tpch, \\i, \\q", file=out)
        return True

    def _list_tables(self, out) -> None:
        for name in self.db.catalog.names():
            rows = len(self.db.catalog.get(name).rows)
            print(f"  table {name} ({rows} rows)", file=out)
        for name in self.db.views:
            print(f"  view  {name}", file=out)
        if not self.db.catalog.names() and not self.db.views:
            print("  (no tables)", file=out)

    def _describe(self, name: str, out) -> None:
        stored = self.db.catalog.get(name)
        for attribute in stored.schema:
            print(f"  {attribute.name:24s} {attribute.type.value}",
                  file=out)

    # -- SQL ----------------------------------------------------------------------

    def run_sql(self, text: str, out) -> None:
        started = time.perf_counter()
        try:
            from .sql.ast import SelectStmt
            from .sql.parser import parse_statement
            statement = parse_statement(text)
            if isinstance(statement, SelectStmt):
                if statement.provenance == "auto" and \
                        self.strategy != "auto":
                    statement.provenance = self.strategy
                relation = self.db._run_select(statement)
                print(relation.pretty(), file=out)
                print(f"({len(relation.rows)} rows)", file=out)
            else:
                self.db._run(statement)
                print("ok", file=out)
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            return
        if self.timing:
            elapsed = (time.perf_counter() - started) * 1000
            print(f"time: {elapsed:.1f} ms", file=out)

    def run_line(self, line: str, out) -> bool:
        """Process one input line; returns False to quit."""
        stripped = line.strip()
        if not stripped:
            return True
        if stripped.startswith("\\"):
            return self.run_meta(stripped, out)
        self.run_sql(stripped.rstrip(";"), out)
        return True


def main(argv: list[str] | None = None) -> int:
    """REPL entry point."""
    shell = Shell()
    print("repro — Provenance for Nested Subqueries (EDBT 2009 repro)")
    print('type SQL, "\\tpch" to load data, or "\\q" to quit')
    buffer: list[str] = []
    while True:
        prompt = "repro> " if not buffer else "  ...> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        if line.strip().startswith("\\"):
            if not shell.run_meta(line.strip(), sys.stdout):
                return 0
            continue
        buffer.append(line)
        if line.rstrip().endswith(";") or not line.strip():
            text = " ".join(buffer).strip()
            buffer.clear()
            if text and not shell.run_line(text, sys.stdout):
                return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
