"""CSV import/export for :class:`~repro.db.Database`.

Values are parsed according to the table's declared column types
(``SQLType``); empty fields become NULL.  Provenance results export like
any other relation, so a traced result set can be handed to downstream
tooling.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Iterable, TextIO

from .datatypes import SQLType
from .db import Database
from .errors import ReproError
from .relation import Relation


def _parse_value(text: str, type_: SQLType) -> Any:
    if text == "":
        return None
    if type_ == SQLType.INTEGER:
        return int(text)
    if type_ == SQLType.FLOAT:
        return float(text)
    if type_ == SQLType.BOOLEAN:
        return text.strip().lower() in ("t", "true", "1", "yes")
    return text


def _infer_type(values: list[str]) -> SQLType:
    non_empty = [v for v in values if v != ""]
    if not non_empty:
        return SQLType.TEXT
    try:
        for value in non_empty:
            int(value)
        return SQLType.INTEGER
    except ValueError:
        pass
    try:
        for value in non_empty:
            float(value)
        return SQLType.FLOAT
    except ValueError:
        pass
    return SQLType.TEXT


def load_csv(db: Database, table: str, source: str | Path | TextIO,
             create: bool = True, header: bool = True) -> int:
    """Load CSV data into *table*; returns the number of rows inserted.

    With ``create=True`` and the table absent, column types are inferred
    from the data (int -> float -> text) and the table is created from the
    header row (required in that case).
    """
    close_after = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, newline="")
        close_after = True
    else:
        handle = source
    try:
        reader = csv.reader(handle)
        rows = list(reader)
    finally:
        if close_after:
            handle.close()
    if not rows:
        return 0
    if header:
        names = [name.strip() for name in rows[0]]
        data = rows[1:]
    else:
        names = [f"col{i + 1}" for i in range(len(rows[0]))]
        data = rows
    if table.lower() not in db.catalog:
        if not create:
            raise ReproError(f"table {table!r} does not exist")
        types = [
            _infer_type([row[i] for row in data if i < len(row)])
            for i in range(len(names))]
        db.create_table(table, list(zip(names, (t.value for t in types))))
    stored = db.catalog.get(table)
    if len(stored.schema) != len(names):
        raise ReproError(
            f"CSV has {len(names)} columns but table {table!r} has "
            f"{len(stored.schema)}")
    types = [attr.type for attr in stored.schema]
    parsed = [
        tuple(_parse_value(value, type_)
              for value, type_ in zip(row, types))
        for row in data]
    return db.insert(table, parsed)


def dump_csv(relation: Relation, target: str | Path | TextIO | None = None,
             header: bool = True) -> str:
    """Write *relation* as CSV; returns the CSV text.

    NULLs become empty fields.  If *target* is None the text is only
    returned, not written anywhere.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    if header:
        writer.writerow(relation.schema.names)
    for row in relation.rows:
        writer.writerow(["" if value is None else value for value in row])
    text = buffer.getvalue()
    if target is None:
        return text
    if isinstance(target, (str, Path)):
        with open(target, "w", newline="") as handle:
            handle.write(text)
    else:
        target.write(text)
    return text
