"""Relational algebra operator trees (Figure 1 of the paper, plus
Sort/Limit needed for SQL completeness)."""

from .operators import (
    Aggregate,
    BaseRelation,
    Join,
    JoinKind,
    Limit,
    Operator,
    Project,
    Select,
    SetOp,
    SetOpKind,
    Sort,
    SortKey,
    Values,
)
from .printer import explain, summarize
from .properties import (
    collect_base_relations,
    contains_aggregates,
    contains_sublinks,
    is_correlated,
)
from .trees import (
    clone,
    iter_expressions,
    iter_operators,
    shift_correlation,
    shift_correlation_expr,
    transform_expressions,
)

__all__ = [
    "Aggregate", "BaseRelation", "Join", "JoinKind", "Limit", "Operator",
    "Project", "Select", "SetOp", "SetOpKind", "Sort", "SortKey", "Values",
    "explain", "summarize",
    "collect_base_relations", "contains_aggregates", "contains_sublinks",
    "is_correlated",
    "clone", "iter_expressions", "iter_operators", "shift_correlation",
    "shift_correlation_expr", "transform_expressions",
]
