"""Tree utilities over algebra operators and their expressions.

The central piece is :func:`shift_correlation`: when the Gen strategy
relocates an expression (or a whole rewritten sublink query) *inside a new
sublink boundary*, every column reference escaping the relocated fragment
must point one level further out.  Levels behave like de Bruijn indices:
a ``Col`` at sublink-boundary depth ``b`` within the fragment escapes the
fragment iff ``level >= b``, and exactly those references are shifted.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator

from ..expressions.ast import Col, Expr, Sublink
from .operators import Operator


def iter_operators(op: Operator, into_sublinks: bool = False
                   ) -> Iterator[Operator]:
    """Pre-order iteration over *op* and its descendants.

    With ``into_sublinks=True`` the iteration also descends into the algebra
    trees of sublink expressions.
    """
    yield op
    for child in op.children():
        yield from iter_operators(child, into_sublinks)
    if into_sublinks:
        for expr in op.expressions():
            for node in _walk_expr(expr):
                if isinstance(node, Sublink):
                    yield from iter_operators(node.query, True)


def _walk_expr(expr: Expr) -> Iterator[Expr]:
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)


def iter_expressions(op: Operator) -> Iterator[Expr]:
    """All expressions attached to operators of *op*'s tree (top query level
    only — sublink query trees are not entered)."""
    for node in iter_operators(op):
        yield from node.expressions()


def transform_expressions(op: Operator,
                          fn: Callable[[Expr], Expr]) -> Operator:
    """Rebuild *op*'s tree with every attached expression mapped by *fn*.

    *fn* receives whole attached expressions (conditions, projection items);
    it is responsible for any recursion it needs.  Children operators are
    transformed first.
    """
    new_children = [transform_expressions(c, fn) for c in op.children()]
    if list(op.children()) != new_children:
        op = op.replace_children(new_children)
    old_exprs = op.expressions()
    if old_exprs:
        new_exprs = [fn(e) for e in old_exprs]
        if list(old_exprs) != new_exprs:
            op = op.replace_expressions(new_exprs)
    return op


# ---------------------------------------------------------------------------
# Cloning
# ---------------------------------------------------------------------------

def clone(op: Operator) -> Operator:
    """Deep-copy an operator tree.

    Expressions are immutable and shared, *except* sublinks, whose query
    trees are cloned so the copy never aliases operators with the original
    (the executor's sublink cache is keyed by operator identity).
    """
    new_children = [clone(child) for child in op.children()]
    if new_children:
        op = op.replace_children(new_children)
    else:
        op = copy.copy(op)  # leaves (BaseRelation/Values) get fresh nodes
    exprs = op.expressions()
    if exprs:
        op = op.replace_expressions([clone_expr(e) for e in exprs])
    return op


def clone_expr(expr: Expr) -> Expr:
    """Copy *expr*, deep-cloning any sublink query trees inside it."""
    new_children = [clone_expr(c) for c in expr.children()]
    if new_children != list(expr.children()):
        expr = expr.replace_children(new_children)
    if isinstance(expr, Sublink):
        return Sublink(expr.kind, clone(expr.query), expr.op, expr.test)
    return expr


# ---------------------------------------------------------------------------
# Correlation-level shifting
# ---------------------------------------------------------------------------

def shift_correlation_expr(expr: Expr, delta: int, boundary: int = 0) -> Expr:
    """Shift escaping column references of an expression fragment.

    A ``Col`` at sublink depth ``b`` (relative to the fragment root, where
    the fragment itself starts at depth *boundary*) escapes the fragment iff
    ``level >= b``; escaping references get ``level += delta``.
    """
    if isinstance(expr, Col):
        if expr.level >= boundary:
            return Col(expr.name, expr.level + delta)
        return expr
    new_children = [
        shift_correlation_expr(child, delta, boundary)
        for child in expr.children()]
    if new_children != list(expr.children()):
        expr = expr.replace_children(new_children)
    if isinstance(expr, Sublink):
        shifted_query = shift_correlation(expr.query, delta, boundary + 1)
        if shifted_query is not expr.query:
            expr = Sublink(expr.kind, shifted_query, expr.op, expr.test)
    return expr


def shift_correlation(op: Operator, delta: int, boundary: int = 1
                      ) -> Operator:
    """Shift escaping references of a whole (sub)query operator tree.

    For a sublink query being relocated, expressions attached directly to
    its operators live at depth 1 relative to the construct that hosts the
    sublink — hence the default ``boundary=1``.
    """
    if delta == 0:
        return op
    new_children = [
        shift_correlation(child, delta, boundary) for child in op.children()]
    if list(op.children()) != new_children:
        op = op.replace_children(new_children)
    exprs = op.expressions()
    if exprs:
        new_exprs = [
            shift_correlation_expr(e, delta, boundary) for e in exprs]
        if list(exprs) != new_exprs:
            op = op.replace_expressions(new_exprs)
    return op
