"""EXPLAIN-style rendering of algebra trees."""

from __future__ import annotations

from ..expressions.printer import format_expr
from .operators import (
    Aggregate, BaseRelation, Join, Limit, Operator, Project, Select, SetOp,
    Sort, Values,
)


def _label(op: Operator) -> str:
    if isinstance(op, BaseRelation):
        return f"Scan {op.table} as {op.alias} -> {list(op.schema.names)}"
    if isinstance(op, Values):
        return f"Values {len(op.rows)} row(s) -> {list(op.schema.names)}"
    if isinstance(op, Project):
        kind = "Distinct" if op.distinct else "Project"
        items = ", ".join(
            f"{format_expr(expr)} AS {name}" for name, expr in op.items)
        return f"{kind} [{items}]"
    if isinstance(op, Select):
        return f"Select {format_expr(op.condition)}"
    if isinstance(op, Join):
        return f"Join {op.kind.value} ON {format_expr(op.condition)}"
    if isinstance(op, Aggregate):
        aggs = ", ".join(
            f"{format_expr(call)} AS {name}" for name, call in op.aggregates)
        return f"Aggregate group={list(op.group)} [{aggs}]"
    if isinstance(op, SetOp):
        flavor = "ALL" if op.all else "DISTINCT"
        return f"SetOp {op.kind.value.upper()} {flavor}"
    if isinstance(op, Sort):
        keys = ", ".join(
            f"{format_expr(k.expr)} {'ASC' if k.ascending else 'DESC'}"
            for k in op.keys)
        return f"Sort [{keys}]"
    if isinstance(op, Limit):
        return f"Limit {op.count} OFFSET {op.offset}"
    return type(op).__name__


def explain(op: Operator, indent: int = 0) -> str:
    """Multi-line, indented rendering of an operator tree.

    Sublink query trees are rendered inline, further indented, so a Gen
    rewrite's full structure is visible.
    """
    from ..expressions.ast import Sublink

    pad = "  " * indent
    lines = [pad + _label(op)]
    for expr in op.expressions():
        stack = [expr]
        while stack:
            node = stack.pop()
            stack.extend(node.children())
            if isinstance(node, Sublink):
                lines.append(pad + f"  [sublink {node.kind.value}]")
                lines.append(explain(node.query, indent + 2))
    for child in op.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)


def summarize(op: Operator) -> str:
    """One-line summary (used by reprs)."""
    parts = []
    for node_count, node in enumerate(_preorder(op)):
        if node_count >= 4:
            parts.append("...")
            break
        parts.append(type(node).__name__)
    return " > ".join(parts)


def _preorder(op: Operator):
    yield op
    for child in op.children():
        yield from _preorder(child)
