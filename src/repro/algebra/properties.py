"""Static properties of algebra trees used by the rewriter and planner.

* :func:`is_correlated` — does a sublink query reference enclosing scopes?
  (decides Gen vs Left/Move applicability, Section 3.6)
* :func:`collect_base_relations` — the ``Base(Tsub)`` list used to build
  the Gen strategy's CrossBase.
* :func:`contains_sublinks` / :func:`contains_aggregates` — expression
  classification helpers.
"""

from __future__ import annotations

from ..expressions.ast import AggCall, Col, Expr, Sublink
from .operators import BaseRelation, Operator
from .trees import iter_operators


def _expr_nodes(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _expr_nodes(child)


def contains_sublinks(expr: Expr) -> bool:
    """True iff *expr* contains a sublink node (at any depth of the
    expression, not looking inside sublink query trees)."""
    return any(isinstance(node, Sublink) for node in _expr_nodes(expr))


def contains_aggregates(expr: Expr) -> bool:
    """True iff *expr* contains an aggregate call outside sublinks."""
    return any(isinstance(node, AggCall) for node in _expr_nodes(expr))


def _max_escape_expr(expr: Expr, boundary: int) -> int:
    """Largest ``level - boundary_at_ref + 1`` over escaping refs, i.e. how
    many levels above the fragment root the expression reaches (0 = none)."""
    deepest = 0
    if isinstance(expr, Col):
        if expr.level >= boundary:
            deepest = expr.level - boundary + 1
    for child in expr.children():
        deepest = max(deepest, _max_escape_expr(child, boundary))
    if isinstance(expr, Sublink):
        deepest = max(deepest, _max_escape_op(expr.query, boundary + 1))
    return deepest


def _max_escape_op(op: Operator, boundary: int) -> int:
    deepest = 0
    for node in iter_operators(op):
        for expr in node.expressions():
            deepest = max(deepest, _max_escape_expr(expr, boundary))
    for node in iter_operators(op):
        for expr in node.expressions():
            for sub in _expr_nodes(expr):
                if isinstance(sub, Sublink):
                    deepest = max(
                        deepest, _max_escape_op(sub.query, boundary + 1))
    return deepest


def correlation_depth(query: Operator) -> int:
    """How many enclosing scopes *query* reaches into (0 = uncorrelated)."""
    return _max_escape_op(query, boundary=1)


def is_correlated(query: Operator) -> bool:
    """True iff the sublink query *query* references an enclosing scope."""
    return correlation_depth(query) > 0


def expr_is_correlated(expr: Expr) -> bool:
    """True iff *expr* (e.g. a sublink's test) escapes its own scope."""
    return _max_escape_expr(expr, boundary=0) > 0


def collect_base_relations(op: Operator) -> list[BaseRelation]:
    """All base-relation accesses of *op*'s tree, in depth-first order,
    including those inside nested sublink queries (``Base(T)``)."""
    return [node for node in iter_operators(op, into_sublinks=True)
            if isinstance(node, BaseRelation)]
