"""Algebra operator nodes.

The operator set mirrors Figure 1 of the paper:

* bag/set projection (``Project`` with a ``distinct`` flag),
* selection,
* cross product / inner join / left outer join (``Join``),
* aggregation (grouping on *columns* — the analyzer normalizes grouping
  expressions into a projection below, exactly as the paper simulates
  GROUP BY sublinks),
* bag/set union, intersection, difference (``SetOp`` with an ``all`` flag),
* base relation access and literal relations (``Values``, used for the
  ``null(R)`` padding rows of the Gen strategy's CrossBase),
* ``Sort``/``Limit`` for SQL completeness.

The nesting operators (ANY/ALL/EXISTS/scalar) are *expressions* —
:class:`repro.expressions.ast.Sublink` — attached to selection conditions,
projection items and join conditions, as in the paper's algebra.

Operators compare by identity; trees are rebuilt, never mutated, by the
provenance rewriter.  Every operator exposes:

* ``schema``        — the (cached) output schema,
* ``children()``    — input operators,
* ``replace_children(new)`` — rebuild with new inputs,
* ``expressions()`` — the expressions attached to this node,
* ``replace_expressions(new)`` — rebuild with new expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Sequence

from ..errors import SchemaError
from ..expressions.ast import AggCall, Expr, TRUE
from ..schema import Attribute, Schema
from ..datatypes import SQLType


class Operator:
    """Base class of all algebra nodes."""

    __slots__ = ("_schema",)

    def __init__(self) -> None:
        self._schema: Schema | None = None

    @property
    def schema(self) -> Schema:
        """Output schema (computed once, cached)."""
        if self._schema is None:
            self._schema = self._infer_schema()
        return self._schema

    def _infer_schema(self) -> Schema:
        raise NotImplementedError

    def children(self) -> tuple["Operator", ...]:
        return ()

    def replace_children(self, new: Sequence["Operator"]) -> "Operator":
        assert not new
        return self

    def expressions(self) -> tuple[Expr, ...]:
        return ()

    def replace_expressions(self, new: Sequence[Expr]) -> "Operator":
        assert not new
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import summarize
        return summarize(self)


class BaseRelation(Operator):
    """A scan of a catalog table.

    ``table`` is the catalog name; ``schema`` carries the *output* attribute
    names chosen by the analyzer (unique within the query scope — usually
    ``alias.column``).  Positions match the stored relation's columns.
    """

    __slots__ = ("table", "alias")

    def __init__(self, table: str, alias: str, schema: Schema):
        super().__init__()
        self.table = table
        self.alias = alias
        self._schema = schema


class Values(Operator):
    """A literal relation (used for ``null(R)`` rows and for testing)."""

    __slots__ = ("rows",)

    def __init__(self, schema: Schema, rows: Sequence[tuple]):
        super().__init__()
        self._schema = schema
        self.rows = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(schema):
                raise SchemaError(
                    f"Values row arity {len(row)} != schema {len(schema)}")


class Project(Operator):
    """Bag or set projection onto named expressions.

    ``items`` is a sequence of ``(name, expr)``; ``distinct=True`` is the
    duplicate-removing set version (SQL ``SELECT DISTINCT``).
    """

    __slots__ = ("input", "items", "distinct")

    def __init__(self, input: Operator,
                 items: Sequence[tuple[str, Expr]],
                 distinct: bool = False):
        super().__init__()
        self.input = input
        self.items = tuple(items)
        self.distinct = distinct

    def _infer_schema(self) -> Schema:
        from ..expressions.ast import Col
        attributes = []
        for name, expr in self.items:
            type_ = SQLType.ANY
            if isinstance(expr, Col) and expr.level == 0 \
                    and expr.name in self.input.schema:
                type_ = self.input.schema[expr.name].type
            attributes.append(Attribute(name, type_))
        return Schema(attributes)

    def children(self):
        return (self.input,)

    def replace_children(self, new):
        return Project(new[0], self.items, self.distinct)

    def expressions(self):
        return tuple(expr for _, expr in self.items)

    def replace_expressions(self, new):
        items = tuple(
            (name, expr) for (name, _), expr in zip(self.items, new))
        return Project(self.input, items, self.distinct)


class Select(Operator):
    """Selection: keep input rows whose condition is definitely true."""

    __slots__ = ("input", "condition")

    def __init__(self, input: Operator, condition: Expr):
        super().__init__()
        self.input = input
        self.condition = condition

    def _infer_schema(self) -> Schema:
        return self.input.schema

    def children(self):
        return (self.input,)

    def replace_children(self, new):
        return Select(new[0], self.condition)

    def expressions(self):
        return (self.condition,)

    def replace_expressions(self, new):
        return Select(self.input, new[0])


class JoinKind(Enum):
    """Join flavors: cross product, inner join, left outer join."""

    CROSS = "cross"
    INNER = "inner"
    LEFT = "left"


class Join(Operator):
    """Binary join; output schema is left ++ right."""

    __slots__ = ("left", "right", "condition", "kind")

    def __init__(self, left: Operator, right: Operator,
                 condition: Expr = TRUE, kind: JoinKind = JoinKind.INNER):
        super().__init__()
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind

    def _infer_schema(self) -> Schema:
        return self.left.schema.concat(self.right.schema)

    def children(self):
        return (self.left, self.right)

    def replace_children(self, new):
        return Join(new[0], new[1], self.condition, self.kind)

    def expressions(self):
        return (self.condition,)

    def replace_expressions(self, new):
        return Join(self.left, self.right, new[0], self.kind)


class Aggregate(Operator):
    """Grouping + aggregation.

    ``group`` is a tuple of input *column names* (the analyzer projects
    grouping expressions into columns below this operator).  ``aggregates``
    is a tuple of ``(output_name, AggCall)``.  Output schema = group columns
    followed by aggregate results, one row per group; with no group columns
    exactly one output row (even for empty input — SQL semantics).
    """

    __slots__ = ("input", "group", "aggregates")

    def __init__(self, input: Operator, group: Sequence[str],
                 aggregates: Sequence[tuple[str, AggCall]]):
        super().__init__()
        self.input = input
        self.group = tuple(group)
        self.aggregates = tuple(aggregates)

    def _infer_schema(self) -> Schema:
        attributes = [self.input.schema[name] for name in self.group]
        attributes.extend(Attribute(name) for name, _ in self.aggregates)
        return Schema(attributes)

    def children(self):
        return (self.input,)

    def replace_children(self, new):
        return Aggregate(new[0], self.group, self.aggregates)

    def expressions(self):
        return tuple(call for _, call in self.aggregates)

    def replace_expressions(self, new):
        aggregates = tuple(
            (name, call) for (name, _), call in zip(self.aggregates, new))
        return Aggregate(self.input, self.group, aggregates)


class SetOpKind(Enum):
    """Set operation flavors."""

    UNION = "union"
    INTERSECT = "intersect"
    EXCEPT = "except"


class SetOp(Operator):
    """Union/intersection/difference; ``all=True`` is the bag version."""

    __slots__ = ("kind", "left", "right", "all")

    def __init__(self, kind: SetOpKind, left: Operator, right: Operator,
                 all: bool = False):
        super().__init__()
        self.kind = kind
        self.left = left
        self.right = right
        self.all = all

    def _infer_schema(self) -> Schema:
        if len(self.left.schema) != len(self.right.schema):
            raise SchemaError(
                f"{self.kind.value} over different arities "
                f"{len(self.left.schema)} vs {len(self.right.schema)}")
        return self.left.schema

    def children(self):
        return (self.left, self.right)

    def replace_children(self, new):
        return SetOp(self.kind, new[0], new[1], self.all)


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


class Sort(Operator):
    """Deterministic ordering (NULLs sort first ascending, last descending)."""

    __slots__ = ("input", "keys")

    def __init__(self, input: Operator, keys: Sequence[SortKey]):
        super().__init__()
        self.input = input
        self.keys = tuple(keys)

    def _infer_schema(self) -> Schema:
        return self.input.schema

    def children(self):
        return (self.input,)

    def replace_children(self, new):
        return Sort(new[0], self.keys)

    def expressions(self):
        return tuple(key.expr for key in self.keys)

    def replace_expressions(self, new):
        keys = tuple(
            SortKey(expr, key.ascending)
            for key, expr in zip(self.keys, new))
        return Sort(self.input, keys)


class Limit(Operator):
    """LIMIT/OFFSET."""

    __slots__ = ("input", "count", "offset")

    def __init__(self, input: Operator, count: int | None,
                 offset: int = 0):
        super().__init__()
        self.input = input
        self.count = count
        self.offset = offset

    def _infer_schema(self) -> Schema:
        return self.input.schema

    def children(self):
        return (self.input,)

    def replace_children(self, new):
        return Limit(new[0], self.count, self.offset)
