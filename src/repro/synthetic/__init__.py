"""Synthetic workload of Section 4.2.2: Gaussian two-column tables and the
parameterized sublink queries q1 (equality ANY) and q2 (inequality ALL)."""

from .generator import SyntheticConfig, load_synthetic, synthetic_rows
from .queries import q1_sql, q2_sql, random_range

__all__ = [
    "SyntheticConfig", "load_synthetic", "synthetic_rows",
    "q1_sql", "q2_sql", "random_range",
]
