"""Synthetic table generator (Section 4.2.2).

The paper: "tables with two integer attributes (a and b) in sizes from 10
to 500000 tuples.  The attribute values where drawn from a gaussian
distribution with a fixed mean and a standard derivation of 100 times the
table size."

We follow that for ``b`` — the attribute the ``range`` predicates select
on; because the standard deviation grows with the table size, a
fixed-width window selects a roughly constant number of tuples at every
size, which is what lets the paper vary relation sizes while keeping the
selected subsets comparable.  For ``a`` — the attribute compared through
the ANY/ALL sublinks — a size-proportional spread would make equality
matches vanish at large sizes, so ``a`` uses a fixed spread (documented
substitution; it preserves the join selectivity the experiment needs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..db import Database

#: Standard deviation multiplier from the paper.
B_STDDEV_PER_ROW = 100
#: Fixed spread of the comparison attribute ``a``.
A_STDDEV = 100


@dataclass(frozen=True)
class SyntheticConfig:
    """Sizes and seed for one synthetic database instance."""

    input_size: int = 1000       # |R1|, the selection's input
    sublink_size: int = 1000     # |R2|, the sublink's relation
    seed: int = 0


def synthetic_rows(size: int, seed: int) -> list[tuple[int, int]]:
    """Deterministic rows ``(a, b)`` for one table."""
    rng = random.Random(f"synthetic-{seed}-{size}")
    rows = []
    b_sigma = B_STDDEV_PER_ROW * max(size, 1)
    for _ in range(size):
        a = round(rng.gauss(0, A_STDDEV))
        b = round(rng.gauss(0, b_sigma))
        rows.append((a, b))
    return rows


def load_synthetic(config: SyntheticConfig) -> Database:
    """A database with tables ``r1`` and ``r2`` per *config*."""
    db = Database()
    db.create_table("r1", [("a", "int"), ("b", "int")])
    db.create_table("r2", [("a", "int"), ("b", "int")])
    db.insert("r1", synthetic_rows(config.input_size, config.seed))
    db.insert("r2", synthetic_rows(config.sublink_size, config.seed + 1))
    return db
