"""The two parameterized synthetic queries of Section 4.2.2.

::

    q1 = σ_range ∧ a = ANY(σ_range2(R2)) (R1)      -- equality ANY
    q2 = σ_range ∧ a < ALL(σ_range2(R2)) (R1)      -- inequality ALL

``range``/``range2`` select a random fixed-width window of attribute ``b``
from each table.  q1 is Unn-eligible (rule U2); q2 is not (inequality,
universal quantification), matching the paper's strategy applicability.
"""

from __future__ import annotations

import random

from .generator import B_STDDEV_PER_ROW

#: Window width; with b ~ N(0, 100·size) this selects a roughly constant
#: number of tuples (~40) at every table size.
DEFAULT_WINDOW = 10_000


def random_range(size: int, rng: random.Random,
                 window: int = DEFAULT_WINDOW) -> tuple[int, int]:
    """A random fixed-width window over the bulk of ``b``'s distribution.

    The window width scales with the table's standard deviation the same
    way the distribution does, so the *number* of selected tuples stays
    comparable across sizes (the paper's "random range with a fixed size").
    """
    sigma = B_STDDEV_PER_ROW * max(size, 1)
    low = round(rng.uniform(-1.5, 1.5 - window / sigma) * sigma)
    return low, low + window


def _range_predicate(column: str, bounds: tuple[int, int]) -> str:
    low, high = bounds
    return f"{column} BETWEEN {low} AND {high}"


def q1_sql(input_size: int, sublink_size: int, seed: int = 0,
           window: int = DEFAULT_WINDOW) -> str:
    """q1: selection with an equality-ANY sublink."""
    rng = random.Random(f"q1-{seed}-{input_size}-{sublink_size}")
    range1 = random_range(input_size, rng, window)
    range2 = random_range(sublink_size, rng, window)
    return (
        f"SELECT a, b FROM r1 "
        f"WHERE {_range_predicate('b', range1)} "
        f"AND a = ANY (SELECT a FROM r2 "
        f"WHERE {_range_predicate('b', range2)})")


def q2_sql(input_size: int, sublink_size: int, seed: int = 0,
           window: int = DEFAULT_WINDOW) -> str:
    """q2: selection with an inequality-ALL sublink."""
    rng = random.Random(f"q2-{seed}-{input_size}-{sublink_size}")
    range1 = random_range(input_size, rng, window)
    range2 = random_range(sublink_size, rng, window)
    return (
        f"SELECT a, b FROM r1 "
        f"WHERE {_range_predicate('b', range1)} "
        f"AND a < ALL (SELECT a FROM r2 "
        f"WHERE {_range_predicate('b', range2)})")
