"""Command-line server launcher: ``python -m repro.serve``.

Examples::

    # in-memory database "repro", trust auth, port 5433
    python -m repro.serve

    # durable database over ./data, password-protected user
    python -m repro.serve --database main=./data --user alice:secret

    psql -h 127.0.0.1 -p 5433 -U alice main
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys

from .server import ServerConfig, serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve repro databases over the PostgreSQL wire "
                    "protocol.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=5433,
                        help="TCP port (default 5433; 0 picks a free one)")
    parser.add_argument(
        "--database", action="append", metavar="NAME[=PATH]", default=[],
        help="serve a database: NAME alone is in-memory, NAME=PATH opens "
             "a durable engine over PATH (repeatable; default: in-memory "
             "'repro')")
    parser.add_argument(
        "--user", action="append", metavar="NAME[:PASSWORD]", default=[],
        help="allow a user: NAME alone is trust auth, NAME:PASSWORD "
             "demands that cleartext password (repeatable; default: "
             "trust 'repro')")
    parser.add_argument("--max-connections", type=int, default=64,
                        help="admission-control limit (default 64)")
    parser.add_argument("--workers", type=int, default=8,
                        help="engine worker threads (default 8)")
    parser.add_argument("--shutdown-timeout", type=float, default=10.0,
                        help="seconds to drain in-flight statements on "
                             "shutdown (default 10)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="log connections and errors")
    return parser


def build_config(args: argparse.Namespace) -> ServerConfig:
    users: dict = {}
    for spec in args.user:
        name, sep, password = spec.partition(":")
        users[name] = password if sep else None
    databases: dict = {}
    for spec in args.database:
        name, sep, path = spec.partition("=")
        databases[name] = path if sep else None
    kwargs = dict(host=args.host, port=args.port,
                  max_connections=args.max_connections,
                  worker_threads=args.workers,
                  shutdown_timeout=args.shutdown_timeout)
    if users:
        kwargs["users"] = users
    if databases:
        kwargs["databases"] = databases
    return ServerConfig(**kwargs)


async def _run(config: ServerConfig) -> None:
    server = await serve(config)
    print(f"repro server listening on {config.host}:{server.port} "
          f"(databases: {', '.join(sorted(config.databases))})",
          file=sys.stderr)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        asyncio.run(_run(build_config(args)))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
