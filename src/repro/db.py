"""The legacy :class:`Database` facade — a thin shim over
:class:`repro.api.Connection`.

A SQLite-like in-process API kept for backwards compatibility::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE r (a int, b int)")
    db.execute("INSERT INTO r VALUES (1, 1), (2, 1), (3, 2)")
    result = db.sql("SELECT PROVENANCE * FROM r WHERE a = 2")
    print(result.pretty())

``SELECT PROVENANCE`` (Perm's SQL extension) triggers the provenance
rewrite; ``SELECT PROVENANCE (left)`` forces a strategy.  The same is
available programmatically via :meth:`Database.provenance`.

Every call here re-parses and re-plans — deliberately, so benchmarks of
the un-cached path stay honest.  New code should use
:func:`repro.connect`, whose cursors and prepared statements share an LRU
plan cache and support ``?`` parameter binding; :attr:`Database.connection`
exposes the underlying session, so both APIs can be mixed over one
catalog.
"""

from __future__ import annotations

from collections.abc import Iterator, MutableMapping
from typing import Any, Iterable, Sequence

from .api import Connection, SessionConfig
from .catalog import Catalog
from .engine import ExecutionStats
from .errors import AnalyzerError
from .algebra.operators import Operator
from .algebra.printer import explain
from .relation import Relation
from .sql.ast import SelectStmt
from .sql.parser import parse_statement


class _ViewsProxy(MutableMapping):
    """Dict-flavoured view of the catalog's view registry.

    The legacy ``Database`` exposed ``views`` as a plain dict that callers
    mutated directly; routing mutations through the catalog keeps the DDL
    generation counter (and with it, plan-cache invalidation) correct for
    that old idiom too.
    """

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def __getitem__(self, name: str) -> SelectStmt:
        return self._catalog.views[name.lower()]

    def __setitem__(self, name: str, query: SelectStmt) -> None:
        self._catalog.create_view(name, query)

    def __delitem__(self, name: str) -> None:
        if not self._catalog.has_view(name):
            raise KeyError(name)
        self._catalog.drop_view(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._catalog.views)

    def __len__(self) -> int:
        return len(self._catalog.views)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self._catalog.views)


class Database:
    """An in-process relational database with provenance support.

    A compatibility veneer: state lives in the wrapped
    :class:`~repro.api.Connection` (and its catalog).
    """

    def __init__(self, connection: Connection | None = None,
                 config: SessionConfig | None = None):
        self.connection = connection if connection is not None \
            else Connection(config)

    # -- shared state (delegated) ----------------------------------------------

    @property
    def catalog(self) -> Catalog:
        return self.connection.catalog

    @property
    def views(self) -> "_ViewsProxy":
        """View definitions (now owned by the catalog).

        Mutations through this mapping bump the catalog's generation
        counter, so plan-cache invalidation works even for legacy code
        that assigns or deletes views directly.
        """
        return _ViewsProxy(self.connection.catalog)

    @property
    def last_stats(self) -> ExecutionStats | None:
        return self.connection.last_stats

    @last_stats.setter
    def last_stats(self, stats: ExecutionStats | None) -> None:
        self.connection.last_stats = stats

    # -- DDL / DML convenience (programmatic) ----------------------------------

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]]) -> None:
        """Create a table from ``(column, type-name)`` pairs."""
        self.connection.create_table(name, columns)

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert rows; returns the number of rows inserted."""
        return self.connection.insert(table, rows)

    # -- SQL entry points ---------------------------------------------------------

    def execute(self, text: str) -> Relation | None:
        """Execute one SQL statement; SELECTs return a :class:`Relation`."""
        result = self.connection._run_statement(parse_statement(text))
        return result if isinstance(result, Relation) else None

    def execute_script(self, text: str) -> None:
        """Execute a ``;``-separated script, discarding SELECT outputs."""
        self.connection.execute_script(text)

    def sql(self, text: str, strategy: str | None = None) -> Relation:
        """Run a SELECT (optionally ``SELECT PROVENANCE``).

        *strategy* overrides the strategy named in the SQL text; it is only
        meaningful for provenance queries.
        """
        return self.connection.sql(text, strategy)

    def provenance(self, text: str, strategy: str = "auto") -> Relation:
        """Compute the provenance of a plain SELECT query."""
        return self.connection.provenance(text, strategy)

    def plan(self, text: str, strategy: str | None = None) -> Operator:
        """The algebra plan a query would execute (after any rewrite)."""
        return self.connection.plan(text, strategy)

    def explain(self, text: str, strategy: str | None = None) -> str:
        """EXPLAIN-style rendering of the (possibly rewritten) plan."""
        return explain(self.plan(text, strategy))

    def create_view(self, name: str, text: str) -> None:
        """Register a view over a SELECT statement."""
        self.connection.create_view(name, text)

    # -- internals kept for backwards compatibility -----------------------------

    def _run_select(self, statement: SelectStmt,
                    strategy: str | None = None) -> Relation:
        return self.connection._run_select_uncached(statement, strategy)

    def _run(self, statement) -> Relation | None:
        result = self.connection._run_statement(statement)
        return result if isinstance(result, Relation) else None

    def _plan_select(self, statement: SelectStmt) -> Operator:
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("expected a SELECT statement")
        return self.connection._build_plan(
            statement,
            self.connection._effective_strategy(statement, None))
