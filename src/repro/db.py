"""The user-facing :class:`Database` facade.

A thin, SQLite-like in-process API over the catalog, SQL frontend,
provenance rewriter and executor::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE r (a int, b int)")
    db.execute("INSERT INTO r VALUES (1, 1), (2, 1), (3, 2)")
    result = db.sql("SELECT PROVENANCE * FROM r WHERE a = 2")
    print(result.pretty())

``SELECT PROVENANCE`` (Perm's SQL extension) triggers the provenance
rewrite; ``SELECT PROVENANCE (left)`` forces a strategy.  The same is
available programmatically via :meth:`Database.provenance`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .catalog import Catalog
from .datatypes import SQLType
from .errors import AnalyzerError, ReproError
from .engine import ExecutionStats, Executor
from .expressions.ast import Expr
from .expressions.evaluator import EvalContext, evaluate
from .algebra.operators import Operator
from .algebra.printer import explain
from .provenance import ProvenanceRewriter
from .relation import Relation
from .schema import Attribute, Schema
from .sql.analyzer import Analyzer
from .sql.ast import (
    CreateTableStmt, CreateViewStmt, DeleteStmt, DropStmt, InsertStmt,
    SelectStmt,
)
from .sql.parser import parse_statement, parse_statements


class Database:
    """An in-process relational database with provenance support."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.views: dict[str, SelectStmt] = {}
        self.last_stats: ExecutionStats | None = None

    # -- DDL / DML convenience (programmatic) ----------------------------------

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]]) -> None:
        """Create a table from ``(column, type-name)`` pairs."""
        schema = Schema(
            Attribute(column, SQLType.parse(type_name))
            for column, type_name in columns)
        self.catalog.create(name, schema)

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert rows; returns the number of rows inserted."""
        stored = self.catalog.get(table)
        count = 0
        for row in rows:
            stored.insert(row)
            count += 1
        return count

    # -- SQL entry points ---------------------------------------------------------

    def execute(self, text: str) -> Relation | None:
        """Execute one SQL statement; SELECTs return a :class:`Relation`."""
        statement = parse_statement(text)
        return self._run(statement)

    def execute_script(self, text: str) -> None:
        """Execute a ``;``-separated script, discarding SELECT outputs."""
        for statement in parse_statements(text):
            self._run(statement)

    def sql(self, text: str, strategy: str | None = None) -> Relation:
        """Run a SELECT (optionally ``SELECT PROVENANCE``).

        *strategy* overrides the strategy named in the SQL text; it is only
        meaningful for provenance queries.
        """
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("sql() expects a SELECT statement")
        if strategy is not None:
            statement.provenance = strategy
        return self._run_select(statement)

    def provenance(self, text: str, strategy: str = "auto") -> Relation:
        """Compute the provenance of a plain SELECT query."""
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("provenance() expects a SELECT statement")
        statement.provenance = strategy
        return self._run_select(statement)

    def plan(self, text: str, strategy: str | None = None) -> Operator:
        """The algebra plan a query would execute (after any rewrite)."""
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("plan() expects a SELECT statement")
        if strategy is not None:
            statement.provenance = strategy
        return self._plan_select(statement)

    def explain(self, text: str, strategy: str | None = None) -> str:
        """EXPLAIN-style rendering of the (possibly rewritten) plan."""
        return explain(self.plan(text, strategy))

    def create_view(self, name: str, text: str) -> None:
        """Register a view over a SELECT statement."""
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("a view must be defined by a SELECT")
        self.views[name.lower()] = statement

    # -- internals -------------------------------------------------------------------

    def _analyzer(self) -> Analyzer:
        return Analyzer(self.catalog, self.views)

    def _plan_select(self, statement: SelectStmt) -> Operator:
        strategy = statement.provenance
        statement.provenance = None
        plan = self._analyzer().analyze(statement)
        if strategy:
            rewriter = ProvenanceRewriter(self.catalog, strategy)
            plan = rewriter.rewrite_query(plan).plan
        return plan

    def _run_select(self, statement: SelectStmt) -> Relation:
        plan = self._plan_select(statement)
        executor = Executor(self.catalog)
        result = executor.execute(plan)
        self.last_stats = executor.stats
        return result

    def _run(self, statement) -> Relation | None:
        if isinstance(statement, SelectStmt):
            return self._run_select(statement)
        if isinstance(statement, CreateTableStmt):
            self.create_table(statement.name, statement.columns)
            return None
        if isinstance(statement, CreateViewStmt):
            self.views[statement.name.lower()] = statement.query
            return None
        if isinstance(statement, InsertStmt):
            rows = [
                [_constant(expr) for expr in row] for row in statement.rows]
            self.insert(statement.table, rows)
            return None
        if isinstance(statement, DropStmt):
            if statement.kind == "view":
                if statement.name.lower() not in self.views:
                    raise AnalyzerError(
                        f"view {statement.name!r} does not exist")
                del self.views[statement.name.lower()]
            else:
                self.catalog.drop(statement.name)
            return None
        if isinstance(statement, DeleteStmt):
            self._delete(statement)
            return None
        raise ReproError(f"unsupported statement {statement!r}")

    def _delete(self, statement: DeleteStmt) -> None:
        stored = self.catalog.get(statement.table)
        if statement.where is None:
            stored.rows.clear()
            return
        from .sql.analyzer import Scope
        scope = Scope()
        for attr in stored.schema:
            scope.add(statement.table, attr.name, attr.name)
        condition = self._analyzer()._analyze_expr(statement.where, scope)
        executor = Executor(self.catalog)
        from .expressions.evaluator import Frame
        index = Frame.index_for(stored.schema.names)
        kept = []
        for row in stored.rows:
            ctx = EvalContext((Frame(index, row),), executor)
            if evaluate(condition, ctx) is not True:
                kept.append(row)
        stored.rows[:] = kept


def _constant(expr: Expr) -> Any:
    """Evaluate a constant expression (INSERT VALUES)."""
    ctx = EvalContext((), None)
    return evaluate(expr, ctx)
