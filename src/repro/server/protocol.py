"""PostgreSQL wire protocol v3 codec (the subset repro serves).

Pure functions over bytes — no sockets, no sessions — shared by the
asyncio server (:mod:`repro.server.server`) and the asyncio client
(:mod:`repro.client`), and fuzz-tested on their own in
``tests/test_wire_protocol.py``.

Framing: after the startup phase every message is a one-byte type tag, a
big-endian int32 length (counting itself, not the tag), and the payload.
Startup-phase messages (StartupMessage, SSLRequest, CancelRequest) have
no tag.  :class:`MessageStream` accumulates raw socket reads and yields
complete frames, so multi-message packets and messages split across TCP
reads both decode correctly.

Every message type the server or client handles has a dataclass with an
``encode()`` method and a direction-specific parser
(:func:`parse_frontend` / :func:`parse_backend`); truncated or malformed
payloads raise :class:`~repro.errors.ProtocolError`, never an
``IndexError`` or garbage data.

Values travel in the text format (format code 0).  The type OID carried
in RowDescription / Parse maps onto :class:`~repro.datatypes.SQLType`;
:func:`encode_text` / :func:`decode_text` are the two ends of the value
codec, and :func:`sqlstate_for` / :func:`exception_for` translate the
library's DB-API error hierarchy to and from SQLSTATE codes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..datatypes import SQLType
from ..errors import (
    AnalyzerError, AuthenticationError, BindError, CatalogError,
    ConnectionLimitError, DataError, DatabaseError, Error, ExecutionError,
    ExpressionError, IntegrityError, InterfaceError, InternalError,
    NotSupportedError, OperationalError, ProgrammingError, ProtocolError,
    ServerShutdownError, SQLSyntaxError, StorageError, TransactionError,
)
from ..schema import Schema

#: Protocol version 3.0, as sent in the StartupMessage.
PROTOCOL_VERSION = 196608
#: Magic "versions" of the tagless pre-startup requests.
SSL_REQUEST_CODE = 80877103
CANCEL_REQUEST_CODE = 80877102
GSSENC_REQUEST_CODE = 80877104

#: Hard cap on a single message; a length beyond this is treated as a
#: protocol violation rather than an allocation request.
MAX_MESSAGE_LENGTH = 64 * 1024 * 1024

_INT32 = struct.Struct(">i")
_INT16 = struct.Struct(">h")

# -- type OIDs ----------------------------------------------------------------

#: PostgreSQL type OIDs for the engine's logical types (int8, float8,
#: text, bool, date; ``ANY`` travels as the pseudo-type ``unknown``).
OID_INT8 = 20
OID_FLOAT8 = 701
OID_TEXT = 25
OID_BOOL = 16
OID_DATE = 1082
OID_UNKNOWN = 705

OID_BY_TYPE = {
    SQLType.INTEGER: OID_INT8,
    SQLType.FLOAT: OID_FLOAT8,
    SQLType.TEXT: OID_TEXT,
    SQLType.BOOLEAN: OID_BOOL,
    SQLType.DATE: OID_DATE,
    SQLType.ANY: OID_UNKNOWN,
}

_INT_OIDS = frozenset((20, 21, 23, 26))
_FLOAT_OIDS = frozenset((700, 701, 1700))


def oid_for_value(value) -> int:
    """The parameter type OID the client declares for a Python value."""
    if value is None:
        return 0                     # unspecified; the server infers
    if isinstance(value, bool):
        return OID_BOOL
    if isinstance(value, int):
        return OID_INT8
    if isinstance(value, float):
        return OID_FLOAT8
    return OID_TEXT


def encode_text(value) -> bytes | None:
    """A SQL value in the wire text format (None stays None = SQL NULL)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return b"t" if value else b"f"
    if isinstance(value, float):
        return repr(value).encode("ascii")
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")


def decode_text(data: bytes | None, oid: int):
    """Decode a text-format value per its declared type OID.

    OID 0 (unspecified, e.g. a parameter a driver sent without a type)
    and OID 705 (``unknown``, e.g. a computed column the engine typed as
    ``ANY``) are inferred: integer, then float, then text.
    """
    if data is None:
        return None
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid utf-8 in value: {exc}") from None
    if oid in _INT_OIDS:
        try:
            return int(text)
        except ValueError:
            raise ProtocolError(
                f"invalid integer literal {text!r} for oid {oid}") from None
    if oid in _FLOAT_OIDS:
        try:
            return float(text)
        except ValueError:
            raise ProtocolError(
                f"invalid float literal {text!r} for oid {oid}") from None
    if oid == OID_BOOL:
        lowered = text.strip().lower()
        if lowered in ("t", "true", "1", "on", "yes"):
            return True
        if lowered in ("f", "false", "0", "off", "no"):
            return False
        raise ProtocolError(f"invalid boolean literal {text!r}")
    if oid in (0, OID_UNKNOWN):
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
        return text
    return text


# -- payload reader -----------------------------------------------------------

class PayloadReader:
    """Bounds-checked cursor over one message payload.

    Every read past the end raises :class:`ProtocolError` — a truncated
    message can never surface as an ``IndexError`` or as garbage."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def _take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise ProtocolError(
                f"truncated message: wanted {count} byte(s) at offset "
                f"{self.pos} of {len(self.data)}")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def int32(self) -> int:
        return _INT32.unpack(self._take(4))[0]

    def int16(self) -> int:
        return _INT16.unpack(self._take(2))[0]

    def byte(self) -> int:
        return self._take(1)[0]

    def cstring(self) -> str:
        end = self.data.find(b"\x00", self.pos)
        if end < 0:
            raise ProtocolError("unterminated string in message")
        try:
            text = self.data[self.pos:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid utf-8 in message: {exc}") from None
        self.pos = end + 1
        return text

    def value(self) -> bytes | None:
        """An int32-length-prefixed value (-1 = NULL)."""
        length = self.int32()
        if length == -1:
            return None
        return bytes(self._take(length))

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing byte(s) in message")


class _Writer:
    """Payload builder mirroring :class:`PayloadReader`."""

    __slots__ = ("out",)

    def __init__(self):
        self.out = bytearray()

    def int32(self, value: int) -> "_Writer":
        self.out += _INT32.pack(value)
        return self

    def int16(self, value: int) -> "_Writer":
        self.out += _INT16.pack(value)
        return self

    def byte(self, value: int) -> "_Writer":
        self.out.append(value)
        return self

    def cstring(self, text: str) -> "_Writer":
        self.out += text.encode("utf-8") + b"\x00"
        return self

    def value(self, data: bytes | None) -> "_Writer":
        if data is None:
            self.out += _INT32.pack(-1)
        else:
            self.out += _INT32.pack(len(data)) + data
        return self


def frame(tag: bytes, payload: bytes | bytearray) -> bytes:
    """One complete wire message: tag + int32 length + payload."""
    return tag + _INT32.pack(len(payload) + 4) + bytes(payload)


# -- startup-phase messages (no tag byte) -------------------------------------

@dataclass(frozen=True)
class Startup:
    """StartupMessage: protocol version + key/value parameters
    (``user`` required; ``database`` defaults to the user name)."""

    parameters: tuple[tuple[str, str], ...]

    @property
    def options(self) -> dict[str, str]:
        return dict(self.parameters)

    def encode(self) -> bytes:
        writer = _Writer().int32(PROTOCOL_VERSION)
        for key, value in self.parameters:
            writer.cstring(key).cstring(value)
        writer.byte(0)
        return _INT32.pack(len(writer.out) + 4) + bytes(writer.out)


@dataclass(frozen=True)
class SSLRequest:
    def encode(self) -> bytes:
        return _INT32.pack(8) + _INT32.pack(SSL_REQUEST_CODE)


@dataclass(frozen=True)
class GSSEncRequest:
    def encode(self) -> bytes:
        return _INT32.pack(8) + _INT32.pack(GSSENC_REQUEST_CODE)


@dataclass(frozen=True)
class CancelRequest:
    pid: int
    secret: int

    def encode(self) -> bytes:
        return (_INT32.pack(16) + _INT32.pack(CANCEL_REQUEST_CODE)
                + _INT32.pack(self.pid) + _INT32.pack(self.secret))


def parse_startup(payload: bytes):
    """Decode a startup-phase payload (already stripped of its length)."""
    reader = PayloadReader(payload)
    code = reader.int32()
    if code == SSL_REQUEST_CODE:
        reader.expect_end()
        return SSLRequest()
    if code == GSSENC_REQUEST_CODE:
        reader.expect_end()
        return GSSEncRequest()
    if code == CANCEL_REQUEST_CODE:
        request = CancelRequest(reader.int32(), reader.int32())
        reader.expect_end()
        return request
    if code != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {code >> 16}.{code & 0xFFFF}")
    parameters = []
    while True:
        if reader.pos >= len(payload):
            raise ProtocolError("startup message missing terminator")
        if payload[reader.pos] == 0:
            reader.byte()
            break
        key = reader.cstring()
        parameters.append((key, reader.cstring()))
    reader.expect_end()
    return Startup(tuple(parameters))


# -- frontend messages (client -> server) -------------------------------------

@dataclass(frozen=True)
class Password:
    password: str

    def encode(self) -> bytes:
        return frame(b"p", _Writer().cstring(self.password).out)


@dataclass(frozen=True)
class Query:
    sql: str

    def encode(self) -> bytes:
        return frame(b"Q", _Writer().cstring(self.sql).out)


@dataclass(frozen=True)
class Parse:
    name: str
    sql: str
    param_oids: tuple[int, ...] = ()

    def encode(self) -> bytes:
        writer = _Writer().cstring(self.name).cstring(self.sql)
        writer.int16(len(self.param_oids))
        for oid in self.param_oids:
            writer.int32(oid)
        return frame(b"P", writer.out)


@dataclass(frozen=True)
class Bind:
    portal: str
    statement: str
    param_formats: tuple[int, ...] = ()
    params: tuple[bytes | None, ...] = ()
    result_formats: tuple[int, ...] = ()

    def encode(self) -> bytes:
        writer = _Writer().cstring(self.portal).cstring(self.statement)
        writer.int16(len(self.param_formats))
        for code in self.param_formats:
            writer.int16(code)
        writer.int16(len(self.params))
        for value in self.params:
            writer.value(value)
        writer.int16(len(self.result_formats))
        for code in self.result_formats:
            writer.int16(code)
        return frame(b"B", writer.out)


@dataclass(frozen=True)
class Describe:
    kind: str                       # 'S' statement | 'P' portal
    name: str

    def encode(self) -> bytes:
        return frame(b"D",
                     _Writer().byte(ord(self.kind)).cstring(self.name).out)


@dataclass(frozen=True)
class Execute:
    portal: str
    max_rows: int = 0               # 0 = no limit

    def encode(self) -> bytes:
        return frame(b"E",
                     _Writer().cstring(self.portal).int32(self.max_rows).out)


@dataclass(frozen=True)
class CloseMsg:
    kind: str                       # 'S' statement | 'P' portal
    name: str

    def encode(self) -> bytes:
        return frame(b"C",
                     _Writer().byte(ord(self.kind)).cstring(self.name).out)


@dataclass(frozen=True)
class Flush:
    def encode(self) -> bytes:
        return frame(b"H", b"")


@dataclass(frozen=True)
class Sync:
    def encode(self) -> bytes:
        return frame(b"S", b"")


@dataclass(frozen=True)
class Terminate:
    def encode(self) -> bytes:
        return frame(b"X", b"")


def _parse_close_or_describe(cls, payload: bytes):
    reader = PayloadReader(payload)
    kind = chr(reader.byte())
    if kind not in ("S", "P"):
        raise ProtocolError(f"bad describe/close kind {kind!r}")
    message = cls(kind, reader.cstring())
    reader.expect_end()
    return message


def _parse_bind(payload: bytes) -> Bind:
    reader = PayloadReader(payload)
    portal = reader.cstring()
    statement = reader.cstring()
    param_formats = tuple(reader.int16()
                          for _ in range(reader.int16()))
    params = tuple(reader.value() for _ in range(reader.int16()))
    result_formats = tuple(reader.int16()
                           for _ in range(reader.int16()))
    reader.expect_end()
    for code in (*param_formats, *result_formats):
        if code not in (0, 1):
            raise ProtocolError(f"unknown format code {code}")
    return Bind(portal, statement, param_formats, params, result_formats)


def _parse_parse(payload: bytes) -> Parse:
    reader = PayloadReader(payload)
    name = reader.cstring()
    sql = reader.cstring()
    oids = tuple(reader.int32() for _ in range(reader.int16()))
    reader.expect_end()
    return Parse(name, sql, oids)


def _parse_execute(payload: bytes) -> Execute:
    reader = PayloadReader(payload)
    message = Execute(reader.cstring(), reader.int32())
    reader.expect_end()
    return message


def _one_cstring(cls, payload: bytes):
    reader = PayloadReader(payload)
    message = cls(reader.cstring())
    reader.expect_end()
    return message


def _empty(cls, payload: bytes):
    PayloadReader(payload).expect_end()
    return cls()


_FRONTEND_PARSERS = {
    b"p": lambda p: _one_cstring(Password, p),
    b"Q": lambda p: _one_cstring(Query, p),
    b"P": _parse_parse,
    b"B": _parse_bind,
    b"D": lambda p: _parse_close_or_describe(Describe, p),
    b"E": _parse_execute,
    b"C": lambda p: _parse_close_or_describe(CloseMsg, p),
    b"H": lambda p: _empty(Flush, p),
    b"S": lambda p: _empty(Sync, p),
    b"X": lambda p: _empty(Terminate, p),
}


def parse_frontend(tag: bytes, payload: bytes):
    """Decode one client-to-server message."""
    parser = _FRONTEND_PARSERS.get(tag)
    if parser is None:
        raise ProtocolError(f"unknown frontend message type {tag!r}")
    return parser(payload)


# -- backend messages (server -> client) --------------------------------------

AUTH_OK = 0
AUTH_CLEARTEXT_PASSWORD = 3


@dataclass(frozen=True)
class Authentication:
    code: int                       # AUTH_OK or AUTH_CLEARTEXT_PASSWORD

    def encode(self) -> bytes:
        return frame(b"R", _Writer().int32(self.code).out)


@dataclass(frozen=True)
class ParameterStatus:
    name: str
    value: str

    def encode(self) -> bytes:
        return frame(b"S",
                     _Writer().cstring(self.name).cstring(self.value).out)


@dataclass(frozen=True)
class BackendKeyData:
    pid: int
    secret: int

    def encode(self) -> bytes:
        return frame(b"K", _Writer().int32(self.pid).int32(self.secret).out)


@dataclass(frozen=True)
class ReadyForQuery:
    status: str                     # 'I' idle | 'T' in txn | 'E' failed txn

    def encode(self) -> bytes:
        return frame(b"Z", _Writer().byte(ord(self.status)).out)


# repro: allow(exhaustiveness-wire) - not a frame of its own: one
# column's slice of RowDescription, encoded inline by its encode().
@dataclass(frozen=True)
class FieldDescription:
    name: str
    type_oid: int
    table_oid: int = 0
    column: int = 0
    type_size: int = -1
    type_modifier: int = -1
    format_code: int = 0


@dataclass(frozen=True)
class RowDescription:
    fields: tuple[FieldDescription, ...]

    def encode(self) -> bytes:
        writer = _Writer().int16(len(self.fields))
        for f in self.fields:
            writer.cstring(f.name).int32(f.table_oid).int16(f.column)
            writer.int32(f.type_oid).int16(f.type_size)
            writer.int32(f.type_modifier).int16(f.format_code)
        return frame(b"T", writer.out)


@dataclass(frozen=True)
class DataRow:
    values: tuple[bytes | None, ...]

    def encode(self) -> bytes:
        writer = _Writer().int16(len(self.values))
        for value in self.values:
            writer.value(value)
        return frame(b"D", writer.out)


@dataclass(frozen=True)
class CommandComplete:
    tag: str

    def encode(self) -> bytes:
        return frame(b"C", _Writer().cstring(self.tag).out)


@dataclass(frozen=True)
class EmptyQueryResponse:
    def encode(self) -> bytes:
        return frame(b"I", b"")


@dataclass(frozen=True)
class ParseComplete:
    def encode(self) -> bytes:
        return frame(b"1", b"")


@dataclass(frozen=True)
class BindComplete:
    def encode(self) -> bytes:
        return frame(b"2", b"")


@dataclass(frozen=True)
class CloseComplete:
    def encode(self) -> bytes:
        return frame(b"3", b"")


@dataclass(frozen=True)
class NoData:
    def encode(self) -> bytes:
        return frame(b"n", b"")


@dataclass(frozen=True)
class PortalSuspended:
    def encode(self) -> bytes:
        return frame(b"s", b"")


@dataclass(frozen=True)
class ParameterDescription:
    oids: tuple[int, ...]

    def encode(self) -> bytes:
        writer = _Writer().int16(len(self.oids))
        for oid in self.oids:
            writer.int32(oid)
        return frame(b"t", writer.out)


@dataclass(frozen=True)
class ErrorResponse:
    """Error (or, for :class:`NoticeResponse`, notice) fields keyed by
    their one-letter field type: S severity, C sqlstate, M message."""

    fields: tuple[tuple[str, str], ...]
    TAG = b"E"

    @classmethod
    def make(cls, message: str, sqlstate: str = "XX000",
             severity: str = "ERROR"):
        return cls((("S", severity), ("V", severity), ("C", sqlstate),
                    ("M", message)))

    @property
    def options(self) -> dict[str, str]:
        return dict(self.fields)

    @property
    def message(self) -> str:
        return self.options.get("M", "")

    @property
    def sqlstate(self) -> str:
        return self.options.get("C", "XX000")

    @property
    def severity(self) -> str:
        return self.options.get("S", "ERROR")

    def encode(self) -> bytes:
        writer = _Writer()
        for key, value in self.fields:
            writer.byte(ord(key)).cstring(value)
        writer.byte(0)
        return frame(self.TAG, writer.out)


@dataclass(frozen=True)
class NoticeResponse(ErrorResponse):
    TAG = b"N"

    @classmethod
    def make(cls, message: str, sqlstate: str = "00000",
             severity: str = "NOTICE"):
        return cls((("S", severity), ("V", severity), ("C", sqlstate),
                    ("M", message)))


def _parse_error_fields(cls, payload: bytes):
    reader = PayloadReader(payload)
    fields = []
    while True:
        if reader.pos >= len(payload):
            raise ProtocolError("error response missing terminator")
        code = reader.byte()
        if code == 0:
            break
        fields.append((chr(code), reader.cstring()))
    reader.expect_end()
    return cls(tuple(fields))


def _parse_row_description(payload: bytes) -> RowDescription:
    reader = PayloadReader(payload)
    fields = []
    for _ in range(reader.int16()):
        name = reader.cstring()
        fields.append(FieldDescription(
            name, table_oid=reader.int32(), column=reader.int16(),
            type_oid=reader.int32(), type_size=reader.int16(),
            type_modifier=reader.int32(), format_code=reader.int16()))
    reader.expect_end()
    return RowDescription(tuple(fields))


def _parse_data_row(payload: bytes) -> DataRow:
    reader = PayloadReader(payload)
    values = tuple(reader.value() for _ in range(reader.int16()))
    reader.expect_end()
    return DataRow(values)


def _parse_authentication(payload: bytes) -> Authentication:
    reader = PayloadReader(payload)
    code = reader.int32()
    reader.expect_end()
    if code not in (AUTH_OK, AUTH_CLEARTEXT_PASSWORD):
        raise ProtocolError(
            f"unsupported authentication request {code}")
    return Authentication(code)


def _parse_ready(payload: bytes) -> ReadyForQuery:
    reader = PayloadReader(payload)
    status = chr(reader.byte())
    reader.expect_end()
    if status not in ("I", "T", "E"):
        raise ProtocolError(f"bad transaction status {status!r}")
    return ReadyForQuery(status)


def _parse_key_data(payload: bytes) -> BackendKeyData:
    reader = PayloadReader(payload)
    message = BackendKeyData(reader.int32(), reader.int32())
    reader.expect_end()
    return message


def _parse_parameter_status(payload: bytes) -> ParameterStatus:
    reader = PayloadReader(payload)
    message = ParameterStatus(reader.cstring(), reader.cstring())
    reader.expect_end()
    return message


def _parse_parameter_description(payload: bytes) -> ParameterDescription:
    reader = PayloadReader(payload)
    oids = tuple(reader.int32() for _ in range(reader.int16()))
    reader.expect_end()
    return ParameterDescription(oids)


_BACKEND_PARSERS = {
    b"R": _parse_authentication,
    b"S": _parse_parameter_status,
    b"K": _parse_key_data,
    b"Z": _parse_ready,
    b"T": _parse_row_description,
    b"D": _parse_data_row,
    b"C": lambda p: _one_cstring(CommandComplete, p),
    b"I": lambda p: _empty(EmptyQueryResponse, p),
    b"E": lambda p: _parse_error_fields(ErrorResponse, p),
    b"N": lambda p: _parse_error_fields(NoticeResponse, p),
    b"1": lambda p: _empty(ParseComplete, p),
    b"2": lambda p: _empty(BindComplete, p),
    b"3": lambda p: _empty(CloseComplete, p),
    b"n": lambda p: _empty(NoData, p),
    b"s": lambda p: _empty(PortalSuspended, p),
    b"t": _parse_parameter_description,
}


def parse_backend(tag: bytes, payload: bytes):
    """Decode one server-to-client message."""
    parser = _BACKEND_PARSERS.get(tag)
    if parser is None:
        raise ProtocolError(f"unknown backend message type {tag!r}")
    return parser(payload)


# -- incremental framing ------------------------------------------------------

class MessageStream:
    """Accumulates raw socket bytes and yields complete frames.

    ``feed()`` whatever arrived; ``next_message()`` returns one
    ``(tag, payload)`` pair, or ``None`` until a full frame is buffered.
    During the startup phase (server side) use ``next_startup()``, which
    understands the tagless startup framing.  Both raise
    :class:`ProtocolError` on impossible lengths, so a garbage prefix
    fails fast instead of waiting for 2 GiB that will never come.
    """

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer += data

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet consumed."""
        return len(self._buffer)

    def _check_length(self, length: int) -> None:
        if length < 4 or length > MAX_MESSAGE_LENGTH:
            raise ProtocolError(f"impossible message length {length}")

    def next_startup(self):
        """One startup-phase message, or None if incomplete."""
        if len(self._buffer) < 4:
            return None
        length = _INT32.unpack(self._buffer[:4])[0]
        self._check_length(length)
        if len(self._buffer) < length:
            return None
        payload = bytes(self._buffer[4:length])
        del self._buffer[:length]
        return parse_startup(payload)

    def next_message(self) -> tuple[bytes, bytes] | None:
        """One framed ``(tag, payload)``, or None if incomplete."""
        if len(self._buffer) < 5:
            return None
        tag = bytes(self._buffer[:1])
        length = _INT32.unpack(self._buffer[1:5])[0]
        self._check_length(length)
        if len(self._buffer) < 1 + length:
            return None
        payload = bytes(self._buffer[5:1 + length])
        del self._buffer[:1 + length]
        return tag, payload


# -- schema <-> RowDescription ------------------------------------------------

def describe_schema(schema: Schema) -> RowDescription:
    """The RowDescription for a result schema (text format, engine type
    OIDs — provenance columns describe like any other column)."""
    return RowDescription(tuple(
        FieldDescription(attr.name, OID_BY_TYPE[attr.type])
        for attr in schema))


def decode_row(row: DataRow, description: RowDescription) -> tuple:
    """Client-side: a DataRow back to Python values per the description."""
    if len(row.values) != len(description.fields):
        raise ProtocolError(
            f"DataRow carries {len(row.values)} value(s) for "
            f"{len(description.fields)} described column(s)")
    return tuple(decode_text(value, f.type_oid)
                 for value, f in zip(row.values, description.fields))


# -- SQLSTATE mapping ---------------------------------------------------------

#: Library exception class -> SQLSTATE, most specific first (the first
#: isinstance match wins).
_SQLSTATE_FOR = (
    (AuthenticationError, "28P01"),
    (ConnectionLimitError, "53300"),
    (ServerShutdownError, "57P01"),
    (ProtocolError, "08P01"),
    (SQLSyntaxError, "42601"),
    (BindError, "07001"),
    (AnalyzerError, "42000"),
    (IntegrityError, "23505"),
    (CatalogError, "42P01"),
    (TransactionError, "40001"),
    (StorageError, "58030"),
    (NotSupportedError, "0A000"),
    (ExpressionError, "22000"),
    (DataError, "22000"),
    (ExecutionError, "XX000"),
    (ProgrammingError, "42601"),
    (InterfaceError, "08003"),
    (InternalError, "XX000"),
    (OperationalError, "58000"),
)


def sqlstate_for(exc: BaseException) -> str:
    """The SQLSTATE an error travels under (an explicit ``sqlstate``
    attribute on the exception wins over the class mapping)."""
    explicit = getattr(exc, "sqlstate", None)
    if explicit:
        return explicit
    for cls, code in _SQLSTATE_FOR:
        if isinstance(exc, cls):
            return code
    return "XX000"


#: Client side: exact SQLSTATE -> exception class.
_ERROR_FOR_SQLSTATE = {
    "28P01": AuthenticationError,
    "28000": AuthenticationError,
    "53300": ConnectionLimitError,
    "57P01": ServerShutdownError,
    "08P01": ProtocolError,
    "42601": SQLSyntaxError,
    "07001": BindError,
    "42000": AnalyzerError,
    "23505": IntegrityError,
    "42P01": CatalogError,
    "40001": TransactionError,
    "58030": StorageError,
    "0A000": NotSupportedError,
    "26000": OperationalError,      # invalid_sql_statement_name
    "34000": OperationalError,      # invalid_cursor_name
    "25P02": TransactionError,      # in_failed_sql_transaction
}

#: Class fallback by SQLSTATE class (first two characters).
_ERROR_FOR_CLASS = {
    "08": ProtocolError,
    "22": DataError,
    "23": IntegrityError,
    "25": TransactionError,
    "26": OperationalError,
    "28": AuthenticationError,
    "40": TransactionError,
    "42": ProgrammingError,
    "53": ConnectionLimitError,
    "57": ServerShutdownError,
    "0A": NotSupportedError,
}


def exception_for(sqlstate: str, message: str) -> Error:
    """Client-side: rebuild a library exception from an ErrorResponse."""
    cls = _ERROR_FOR_SQLSTATE.get(sqlstate)
    if cls is None:
        cls = _ERROR_FOR_CLASS.get(sqlstate[:2], DatabaseError)
    exc = cls(message)
    exc.sqlstate = sqlstate
    return exc
