"""Network serving layer: a PostgreSQL-wire front end over shared
:class:`~repro.api.Engine` cores.

- :mod:`repro.server.protocol` — the pure wire codec (framing, message
  types, text-format values, SQLSTATE mapping);
- :mod:`repro.server.auth` — :class:`ServerConfig`: users, database
  routing, admission control;
- :mod:`repro.server.backend` — :class:`BackendSession`: the per-
  connection state machine mapping wire messages onto an engine session;
- :mod:`repro.server.server` — :class:`Server`: the asyncio TCP server.

Start one from Python::

    from repro.server import Server, ServerConfig

    async def main():
        async with Server(ServerConfig(port=5433)) as server:
            await server.serve_forever()

or from the command line: ``python -m repro.serve --port 5433``.
"""

from .auth import DEFAULT_DATABASE, DEFAULT_USER, ServerConfig
from .backend import BackendSession
from .server import Server, serve

__all__ = [
    "BackendSession",
    "DEFAULT_DATABASE",
    "DEFAULT_USER",
    "Server",
    "ServerConfig",
    "serve",
]
