"""Server configuration: users, database routing, admission control.

A :class:`ServerConfig` describes everything the server needs besides
the engines themselves:

* ``users`` — per-user authentication.  A ``None`` password means
  *trust* (the PostgreSQL ``trust`` method: any password, or none, is
  accepted); a string demands a cleartext-password exchange matching it.
* ``databases`` — database-name routing.  Each entry maps a database
  name onto a directory path (a durable :class:`~repro.api.Engine` is
  opened over it) or ``None`` (a fresh in-memory engine).  One engine is
  opened per database and shared by every connection routed to it.
* ``max_connections`` — admission control: connection attempts beyond
  this are refused with SQLSTATE 53300 (``too_many_connections``).
* ``worker_threads`` — the bounded session pool.  Engine work (parse,
  plan, execute, stream) runs on this many threads; with more clients
  than workers, statements queue — backpressure instead of thread
  explosion.  The default scales with the host's CPU count: commits on
  disjoint tables proceed in parallel (per-table commit locks + group
  commit), so a write-heavy multi-client load is no longer serialized
  behind one global writer lock and benefits from more workers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import AuthenticationError, InterfaceError

#: The user (trust auth) and database every config serves by default.
DEFAULT_USER = "repro"
DEFAULT_DATABASE = "repro"


@dataclass
class ServerConfig:
    """Knobs of one :class:`~repro.server.Server`; see the module
    docstring."""

    host: str = "127.0.0.1"
    port: int = 5433
    #: user name -> cleartext password, or None for trust.
    users: dict = field(
        default_factory=lambda: {DEFAULT_USER: None})
    #: database name -> directory path (durable) or None (in-memory).
    databases: dict = field(
        default_factory=lambda: {DEFAULT_DATABASE: None})
    max_connections: int = 64
    worker_threads: int = field(
        default_factory=lambda: max(8, 2 * (os.cpu_count() or 1)))
    #: seconds stop() waits for in-flight statements before cancelling.
    shutdown_timeout: float = 10.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.max_connections < 1:
            raise InterfaceError(
                f"max_connections must be >= 1, got {self.max_connections}")
        if self.worker_threads < 1:
            raise InterfaceError(
                f"worker_threads must be >= 1, got {self.worker_threads}")
        if not self.users:
            raise InterfaceError("at least one user is required")
        if not self.databases:
            raise InterfaceError("at least one database is required")
        if self.shutdown_timeout < 0:
            raise InterfaceError(
                f"shutdown_timeout must be >= 0, got "
                f"{self.shutdown_timeout}")

    # -- authentication -------------------------------------------------------

    def needs_password(self, user: str) -> bool:
        """True when *user* must run the cleartext-password exchange."""
        return self.users.get(user) is not None

    def authenticate(self, user: str, password: str | None) -> None:
        """Validate a startup attempt; raises
        :class:`~repro.errors.AuthenticationError` on failure.

        The unknown-user message deliberately matches the wrong-password
        one, so probing cannot enumerate accounts.
        """
        if user not in self.users:
            raise AuthenticationError(
                f'password authentication failed for user "{user}"')
        expected = self.users[user]
        if expected is None:                      # trust
            return
        if password is None or password != expected:
            raise AuthenticationError(
                f'password authentication failed for user "{user}"')

    def route(self, database: str) -> "str | None":
        """The storage path for *database* (None = in-memory); raises
        :class:`~repro.errors.AuthenticationError` for unknown names."""
        if database not in self.databases:
            raise AuthenticationError(
                f'database "{database}" does not exist')
        return self.databases[database]
