"""The asyncio PostgreSQL-wire server.

One :class:`Server` fronts one or more shared
:class:`~repro.api.Engine` cores (one per served database).  The event
loop owns all socket I/O; every engine call — parsing, planning,
execution, streaming another chunk of a result — runs on a bounded
worker thread pool (``ServerConfig.worker_threads``), so slow queries
exert backpressure instead of spawning threads per client, and the
asyncio loop never blocks on an engine lock.

Connection lifecycle:

* startup: SSL/GSS probes are declined (``N``), the startup message is
  validated against :class:`~repro.server.auth.ServerConfig` (trust or
  cleartext-password auth, database routing), admission control refuses
  connections beyond ``max_connections`` with SQLSTATE 53300;
* the command phase speaks both the simple protocol (``Q``) and the
  extended protocol (Parse/Bind/Describe/Execute/Close/Flush/Sync) with
  named statements and portals; results stream in bounded chunks with
  ``await drain()`` between them, so a slow client throttles its own
  query instead of buffering it server-side;
* errors map onto ErrorResponse via
  :func:`repro.server.protocol.sqlstate_for`; an extended-protocol error
  skips messages until Sync, as PostgreSQL does;
* disconnect — graceful Terminate or a dropped socket — always runs
  :meth:`BackendSession.close`, which closes open portals' streaming
  results (releasing pinned snapshots and leased plan instances) before
  closing the engine session.

:meth:`Server.stop` is a graceful shutdown: stop accepting, let
in-flight statements finish (up to ``shutdown_timeout``), notify
lingering clients with SQLSTATE 57P01, then close the engines the
server opened itself.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from concurrent.futures import ThreadPoolExecutor

from ..api.engine import Engine
from ..errors import (
    AuthenticationError, ConnectionLimitError, ProtocolError, ReproError,
)
from . import protocol
from .auth import DEFAULT_DATABASE, ServerConfig
from .backend import BackendSession

log = logging.getLogger("repro.server")

#: ParameterStatus pairs sent after authentication (psql reads these).
_SERVER_PARAMETERS = (
    ("server_version", "14.0 (repro)"),
    ("server_encoding", "UTF8"),
    ("client_encoding", "UTF8"),
    ("DateStyle", "ISO"),
    ("integer_datetimes", "on"),
    ("standard_conforming_strings", "on"),
)

_DONE = object()


class _Client:
    """Bookkeeping for one accepted connection."""

    __slots__ = ("writer", "task", "backend")

    def __init__(self, writer: asyncio.StreamWriter,
                 task: "asyncio.Task | None" = None):
        self.writer = writer
        self.task = task
        self.backend: BackendSession | None = None


class Server:
    """Asyncio TCP server speaking the PostgreSQL v3 wire protocol over
    shared engines; see the module docstring.

    *engines* pre-attaches engines by database name (they are **not**
    closed by :meth:`stop` — the caller owns them); databases named only
    in ``config.databases`` get an engine opened lazily on first
    connection, owned and closed by the server.
    """

    _pids = itertools.count(1)

    def __init__(self, config: ServerConfig | None = None,
                 engines: "dict[str, Engine] | None" = None):
        self.config = config or ServerConfig()
        self._engines: dict[str, Engine] = dict(engines or {})
        self._owned: list[Engine] = []
        self._engine_lock = asyncio.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.worker_threads,
            thread_name_prefix="repro-server")
        self._server: asyncio.base_events.Server | None = None
        self._clients: set[_Client] = set()
        self._closing = False
        self._stopped = False
        self._in_flight = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise ProtocolError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def connection_count(self) -> int:
        return len(self._clients)

    @property
    def engines(self) -> "dict[str, Engine]":
        """The live engines by database name (lazily opened included)."""
        return dict(self._engines)

    async def start(self) -> "Server":
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._accept, self.config.host, self.config.port)
        log.info("listening on %s:%d", self.config.host, self.port)
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "Server":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight statements, notify and
        disconnect clients, close server-owned engines.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.shutdown_timeout
        while self._in_flight and loop.time() < deadline:
            await asyncio.sleep(0.005)
        shutdown = protocol.ErrorResponse.make(
            "terminating connection due to administrator command",
            sqlstate="57P01", severity="FATAL").encode()
        for client in list(self._clients):
            try:
                client.writer.write(shutdown)
            except (OSError, RuntimeError):
                # transport already closed or closing mid-shutdown; the
                # client is being disconnected either way
                pass
            if client.task is not None:
                client.task.cancel()
        tasks = [c.task for c in list(self._clients) if c.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)
        for engine in self._owned:
            engine.close()
        log.info("server stopped")

    # -- engines --------------------------------------------------------------

    async def _engine_for(self, database: str) -> Engine:
        """The shared engine serving *database*, opened on first use
        (durable open/recovery runs off the event loop)."""
        async with self._engine_lock:
            engine = self._engines.get(database)
            if engine is not None:
                return engine
            path = self.config.route(database)
            loop = asyncio.get_running_loop()
            engine = await loop.run_in_executor(
                self._pool, lambda: Engine(path=path))
            self._engines[database] = engine
            self._owned.append(engine)
            return engine

    # -- connection handling --------------------------------------------------

    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        client = _Client(writer, asyncio.current_task())
        self._clients.add(client)
        try:
            await self._handle(client, reader, writer)
        except (asyncio.CancelledError, asyncio.IncompleteReadError,
                ConnectionError):
            pass
        except ProtocolError as exc:
            await self._send_error(writer, exc, fatal=True)
        # repro: allow(hygiene-broad-except) - last-resort net: log the
        # failure and drop this one connection rather than letting an
        # unexpected bug take down the accept loop for every client
        except Exception:                      # pragma: no cover - safety net
            log.exception("unexpected error in connection handler")
        finally:
            self._clients.discard(client)
            if client.backend is not None:
                await self._close_backend(client.backend)
            writer.close()

    async def _close_backend(self, backend: BackendSession) -> None:
        """Close a backend session off the event loop (it may contend on
        engine locks); falls back to inline close during teardown."""
        loop = asyncio.get_running_loop()
        try:
            await asyncio.shield(
                loop.run_in_executor(self._pool, backend.close))
        except (asyncio.CancelledError, RuntimeError):
            backend.close()

    async def _send_error(self, writer: asyncio.StreamWriter,
                          exc: BaseException, fatal: bool = False) -> None:
        response = protocol.ErrorResponse.make(
            str(exc) or type(exc).__name__,
            sqlstate=protocol.sqlstate_for(exc),
            severity="FATAL" if fatal else "ERROR")
        try:
            writer.write(response.encode())
            await writer.drain()
        except ConnectionError:
            pass

    async def _feed(self, reader: asyncio.StreamReader,
                    stream: protocol.MessageStream) -> bool:
        """Read more bytes into the frame buffer; False on EOF."""
        data = await reader.read(1 << 16)
        if not data:
            return False
        stream.feed(data)
        return True

    async def _handshake(self, reader, writer, stream
                         ) -> "BackendSession | None":
        """Startup + auth; returns the backend session, or None when the
        connection was refused (error already sent)."""
        while True:
            message = stream.next_startup()
            if message is None:
                if not await self._feed(reader, stream):
                    return None
                continue
            if isinstance(message, (protocol.SSLRequest,
                                    protocol.GSSEncRequest)):
                writer.write(b"N")             # offered, not supported
                await writer.drain()
                continue
            if isinstance(message, protocol.CancelRequest):
                return None                    # cancel keys are not issued
            break
        options = message.options
        user = options.get("user")
        if not user:
            raise ProtocolError("startup message carries no user")
        database = options.get("database") or user
        if database not in self.config.databases and \
                database == user and DEFAULT_DATABASE in \
                self.config.databases:
            database = DEFAULT_DATABASE
        if len(self._clients) > self.config.max_connections:
            await self._send_error(
                writer,
                ConnectionLimitError("sorry, too many clients already"),
                fatal=True)
            return None
        try:
            password = None
            if self.config.needs_password(user):
                writer.write(protocol.Authentication(
                    protocol.AUTH_CLEARTEXT_PASSWORD).encode())
                await writer.drain()
                password = await self._read_password(reader, stream)
            self.config.authenticate(user, password)
            engine = await self._engine_for(database)
        except (AuthenticationError, ReproError) as exc:
            await self._send_error(writer, exc, fatal=True)
            return None
        loop = asyncio.get_running_loop()
        conn = await loop.run_in_executor(self._pool, engine.connect)
        backend = BackendSession(conn, user, database)
        greeting = bytearray(protocol.Authentication(
            protocol.AUTH_OK).encode())
        for name, value in _SERVER_PARAMETERS:
            greeting += protocol.ParameterStatus(name, value).encode()
        greeting += protocol.BackendKeyData(next(self._pids), 0).encode()
        greeting += protocol.ReadyForQuery("I").encode()
        writer.write(bytes(greeting))
        await writer.drain()
        return backend

    async def _read_password(self, reader, stream) -> str:
        while True:
            framed = stream.next_message()
            if framed is None:
                if not await self._feed(reader, stream):
                    raise ProtocolError(
                        "connection closed during authentication")
                continue
            tag, payload = framed
            if tag != b"p":
                raise ProtocolError(
                    f"expected password message, got {tag!r}")
            return protocol.parse_frontend(tag, payload).password

    async def _handle(self, client: _Client, reader, writer) -> None:
        stream = protocol.MessageStream()
        backend = await self._handshake(reader, writer, stream)
        if backend is None:
            return
        client.backend = backend
        skip_until_sync = False
        while True:
            framed = stream.next_message()
            if framed is None:
                if self._closing:
                    return
                if not await self._feed(reader, stream):
                    return                     # client vanished
                continue
            tag, payload = framed
            message = protocol.parse_frontend(tag, payload)
            if isinstance(message, protocol.Terminate):
                return
            # in-flight accounting covers the whole response cycle
            # (through ReadyForQuery for Q/Sync), so graceful shutdown
            # never cuts a half-written response
            self._in_flight += 1
            try:
                if isinstance(message, protocol.Query):
                    await self._run_simple(backend, writer, message.sql)
                    continue
                if isinstance(message, protocol.Sync):
                    await self._run_engine(backend.sync)
                    skip_until_sync = False
                    writer.write(protocol.ReadyForQuery(
                        backend.transaction_status).encode())
                    await writer.drain()
                    continue
                if isinstance(message, protocol.Flush):
                    await writer.drain()
                    continue
                if skip_until_sync:
                    continue
                skip_until_sync = not await self._run_extended(
                    backend, writer, message)
            finally:
                self._in_flight -= 1

    # -- command execution ----------------------------------------------------

    async def _run_engine(self, fn, *args):
        """Run one engine-touching call on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, lambda: fn(*args))

    async def _stream(self, generator, writer) -> None:
        """Drain a backend response generator chunk by chunk, writing
        with backpressure; whatever happens, the generator is closed so
        an abandoned engine-side result never leaks."""
        try:
            while True:
                chunk = await self._run_engine(next, generator, _DONE)
                if chunk is _DONE:
                    return
                writer.write(chunk)
                await writer.drain()
        finally:
            await self._run_engine(generator.close)

    async def _run_simple(self, backend, writer, sql: str) -> None:
        try:
            await self._stream(backend.run_simple(sql), writer)
        except ReproError as exc:
            backend.note_error()
            await self._send_error(writer, exc)
        writer.write(protocol.ReadyForQuery(
            backend.transaction_status).encode())
        await writer.drain()

    async def _run_extended(self, backend, writer, message) -> bool:
        """Dispatch one extended-protocol message; False puts the
        connection into skip-until-Sync error recovery."""
        try:
            if isinstance(message, protocol.Parse):
                responses = await self._run_engine(backend.parse, message)
            elif isinstance(message, protocol.Bind):
                responses = await self._run_engine(backend.bind, message)
            elif isinstance(message, protocol.Describe):
                if message.kind == "S":
                    responses = await self._run_engine(
                        backend.describe_statement, message.name)
                else:
                    responses = await self._run_engine(
                        backend.describe_portal, message.name)
            elif isinstance(message, protocol.Execute):
                await self._stream(backend.execute(message), writer)
                return True
            elif isinstance(message, protocol.CloseMsg):
                if message.kind == "S":
                    responses = await self._run_engine(
                        backend.close_statement, message.name)
                else:
                    responses = await self._run_engine(
                        backend.close_portal, message.name)
            elif isinstance(message, protocol.Password):
                raise ProtocolError("unexpected password message")
            else:                              # pragma: no cover - exhaustive
                raise ProtocolError(
                    f"unexpected message {type(message).__name__}")
        except ReproError as exc:
            backend.note_error()
            await self._send_error(writer, exc)
            return False
        for response in responses:
            writer.write(response)
        await writer.drain()
        return True


async def serve(config: ServerConfig | None = None,
                engines: "dict[str, Engine] | None" = None) -> Server:
    """Start a server and return it (`await server.serve_forever()` to
    block, ``await server.stop()`` to shut down)."""
    return await Server(config, engines).start()
