"""Per-client backend session: wire messages onto an Engine session.

One :class:`BackendSession` exists per authenticated client connection.
Its methods are synchronous — the asyncio server runs them on the worker
thread pool — and return iterators of encoded wire messages, so large
results stream out in bounded chunks instead of materializing a whole
response.

It owns:

* the engine session (:class:`~repro.api.Connection`) this client's
  statements run on, with its transaction state;
* the extended-protocol namespaces: prepared statements (Parse) and
  portals (Bind), including the ``$n`` -> ``?`` placeholder translation
  that lets PostgreSQL-style drivers prepare against the engine's
  ``qmark`` parameter style;
* the *failed transaction* state machine: after an error inside an
  explicit transaction, every statement except COMMIT / ROLLBACK is
  refused with SQLSTATE 25P02 until the transaction block ends —
  matching PostgreSQL, and proven by the error-recovery integration
  tests.

:meth:`close` tears everything down — every open portal's streaming
:class:`~repro.api.result.Result` is closed first, so a client that
vanishes mid-stream releases its pinned snapshot and its leased physical
plan instance (the disconnect leak test pins exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..api.connection import Connection
from ..api.result import Result
from ..errors import OperationalError, ProtocolError, TransactionError
from ..schema import Schema
from ..sql.ast import (
    AnalyzeStmt, BeginStmt, CheckpointStmt, CommitStmt, CreateIndexStmt,
    CreateTableStmt, CreateViewStmt, DeleteStmt, DropStmt, InsertStmt,
    RollbackStmt, SelectStmt, Statement,
)
from ..sql.parser import parse_statement, parse_statements
from . import protocol

#: Rows per streamed chunk when the client did not bound Execute.
STREAM_CHUNK = 256


def translate_placeholders(sql: str) -> tuple[str, tuple[int, ...] | None]:
    """Rewrite PostgreSQL ``$n`` parameters to the engine's ``?`` style.

    Returns the rewritten SQL plus the 1-based parameter number for each
    ``?`` in appearance order (None when the text used no ``$n`` at
    all).  Quoted strings/identifiers and ``--`` / ``/* */`` comments
    are skipped, so a literal ``'$1'`` survives untouched.
    """
    out = []
    order: list[int] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'" or ch == '"':
            quote = ch
            out.append(ch)
            i += 1
            while i < n:
                out.append(sql[i])
                if sql[i] == quote:
                    if i + 1 < n and sql[i + 1] == quote:  # '' escape
                        out.append(quote)
                        i += 2
                        continue
                    i += 1
                    break
                i += 1
            continue
        if ch == "-" and sql[i:i + 2] == "--":
            end = sql.find("\n", i)
            end = n if end < 0 else end + 1
            out.append(sql[i:end])
            i = end
            continue
        if ch == "/" and sql[i:i + 2] == "/*":
            end = sql.find("*/", i)
            end = n if end < 0 else end + 2
            out.append(sql[i:end])
            i = end
            continue
        if ch == "$" and i + 1 < n and sql[i + 1].isdigit():
            j = i + 1
            while j < n and sql[j].isdigit():
                j += 1
            order.append(int(sql[i + 1:j]))
            out.append("?")
            i = j
            continue
        out.append(ch)
        i += 1
    if not order:
        return sql, None
    expected = set(range(1, max(order) + 1))
    if set(order) != expected:
        missing = min(expected - set(order))
        raise ProtocolError(f"there is no parameter ${missing}")
    return "".join(out), tuple(order)


def command_tag(statement: Statement, rowcount: int | None) -> str:
    """The CommandComplete tag for an executed statement."""
    if isinstance(statement, SelectStmt):
        return f"SELECT {rowcount or 0}"
    if isinstance(statement, InsertStmt):
        return f"INSERT 0 {rowcount or 0}"
    if isinstance(statement, DeleteStmt):
        return f"DELETE {rowcount or 0}"
    if isinstance(statement, BeginStmt):
        return "BEGIN"
    if isinstance(statement, CommitStmt):
        return "COMMIT"
    if isinstance(statement, RollbackStmt):
        return "ROLLBACK"
    if isinstance(statement, CreateTableStmt):
        return "CREATE TABLE"
    if isinstance(statement, CreateViewStmt):
        return "CREATE VIEW"
    if isinstance(statement, CreateIndexStmt):
        return "CREATE INDEX"
    if isinstance(statement, AnalyzeStmt):
        return "ANALYZE"
    if isinstance(statement, CheckpointStmt):
        return "CHECKPOINT"
    if isinstance(statement, DropStmt):
        return f"DROP {statement.kind.upper()}"
    return "OK"


@dataclass
class PreparedEntry:
    """One server-side prepared statement (Parse target)."""

    name: str
    sql: str                                  # as sent (possibly $n style)
    translated: str                           # engine (?-style) text
    order: tuple[int, ...] | None             # $n per ?, appearance order
    prepared: object | None                   # PreparedStatement; None=empty
    param_oids: tuple[int, ...] = ()          # declared (padded) OIDs

    @property
    def n_params(self) -> int:
        if self.prepared is None:
            return 0
        if self.order is not None:
            return max(self.order)
        return self.prepared.param_count

    def bind_values(self, wire_params, formats) -> tuple:
        """Decode text-format wire parameters and reorder them from
        ``$n`` numbering to the engine's appearance-order ``?`` slots."""
        if len(wire_params) != self.n_params:
            raise ProtocolError(
                f'bind message supplies {len(wire_params)} parameter(s), '
                f'but prepared statement "{self.name}" requires '
                f'{self.n_params}')
        if any(code == 1 for code in formats):
            raise ProtocolError("binary parameter format is not supported")
        oids = self.param_oids
        decoded = tuple(
            protocol.decode_text(
                value, oids[i] if i < len(oids) else 0)
            for i, value in enumerate(wire_params))
        if self.order is None:
            return decoded
        return tuple(decoded[n - 1] for n in self.order)


@dataclass
class Portal:
    """One bound portal: a prepared statement plus parameter values,
    executed lazily and streamed via Execute / PortalSuspended."""

    name: str
    entry: PreparedEntry
    values: tuple
    result: Result | None = None
    position: int = 0
    tag: str | None = None
    completed: bool = False

    def close(self) -> None:
        if self.result is not None:
            self.result.close()
            self.result = None


class BackendSession:
    """Protocol-level session state for one client; see the module
    docstring."""

    def __init__(self, conn: Connection, user: str, database: str):
        self.conn = conn
        self.user = user
        self.database = database
        self.statements: dict[str, PreparedEntry] = {}
        self.portals: dict[str, Portal] = {}
        self.failed_txn = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear the session down (idempotent): close every portal's
        streaming result — releasing pinned snapshots and leased plan
        instances — then the engine session itself."""
        if self._closed:
            return
        self._closed = True
        portals, self.portals = self.portals, {}
        for portal in portals.values():
            portal.close()
        self.statements.clear()
        self.conn.close()

    # -- shared helpers -------------------------------------------------------

    @property
    def transaction_status(self) -> str:
        """The ReadyForQuery status byte: I idle, T in transaction,
        E failed transaction."""
        if self.failed_txn:
            return "E"
        return "T" if self.conn.in_transaction else "I"

    def note_error(self) -> None:
        """Record a statement failure: inside an explicit transaction
        the block is now aborted (PostgreSQL semantics)."""
        if self.conn.in_transaction:
            self.failed_txn = True

    def _check_failed(self, statement: Statement) -> None:
        """In a failed transaction only COMMIT/ROLLBACK may run."""
        if self.failed_txn and not isinstance(
                statement, (CommitStmt, RollbackStmt)):
            exc = TransactionError(
                "current transaction is aborted, commands ignored until "
                "end of transaction block")
            exc.sqlstate = "25P02"
            raise exc

    def _finish_txn_control(self, statement: Statement) -> str:
        """Run COMMIT/ROLLBACK honouring the aborted-block state: a
        COMMIT of a failed transaction rolls back (tag ROLLBACK)."""
        if isinstance(statement, CommitStmt) and self.failed_txn:
            self.conn.rollback()
            self.failed_txn = False
            return "ROLLBACK"
        if isinstance(statement, CommitStmt):
            self.conn.commit()
            return "COMMIT"
        self.conn.rollback()
        self.failed_txn = False
        return "ROLLBACK"

    # -- simple query ('Q') ---------------------------------------------------

    def run_simple(self, sql: str) -> Iterator[bytes]:
        """Execute a simple-protocol query string (possibly several
        ``;``-separated statements), yielding encoded response chunks.

        An error aborts the remainder of the string — the caller turns
        the raised exception into an ErrorResponse, as PostgreSQL does.
        """
        if not sql.strip():
            yield protocol.EmptyQueryResponse().encode()
            return
        statements = parse_statements(sql)
        for statement in statements:
            yield from self._run_statement(statement)

    def _run_statement(self, statement: Statement) -> Iterator[bytes]:
        self._check_failed(statement)
        if isinstance(statement, (CommitStmt, RollbackStmt)):
            tag = self._finish_txn_control(statement)
            yield protocol.CommandComplete(tag).encode()
            return
        outcome = self.conn._run_statement(statement, ())
        if isinstance(outcome, Result):
            yield protocol.describe_schema(outcome.schema).encode()
            yield from self._stream_rows(outcome, outcome.schema,
                                         tag_stmt=statement)
        else:
            yield protocol.CommandComplete(
                command_tag(statement, outcome)).encode()

    def _stream_rows(self, result: Result, schema: Schema,
                     tag_stmt: Statement) -> Iterator[bytes]:
        """DataRow chunks followed by CommandComplete; the result is
        closed however the generator exits, so an abandoned stream (a
        dropped client) never leaks the engine-side tail."""
        sent = 0
        try:
            chunk = bytearray()
            for row in result:
                chunk += protocol.DataRow(tuple(
                    protocol.encode_text(value) for value in row)).encode()
                sent += 1
                if len(chunk) >= 1 << 16 or sent % STREAM_CHUNK == 0:
                    yield bytes(chunk)
                    chunk = bytearray()
            chunk += protocol.CommandComplete(
                command_tag(tag_stmt, sent)).encode()
            yield bytes(chunk)
        finally:
            result.close()

    # -- extended protocol ----------------------------------------------------

    def parse(self, message: protocol.Parse) -> list[bytes]:
        """Parse: plan the statement (eagerly, so errors surface here)
        and store it under its name."""
        translated, order = translate_placeholders(message.sql)
        if not translated.strip():
            entry = PreparedEntry(message.name, message.sql, translated,
                                  order=None, prepared=None)
        else:
            prepared = self.conn.prepare(translated)
            n_params = max(order) if order else prepared.param_count
            oids = tuple(message.param_oids[:n_params]) + (0,) * max(
                0, n_params - len(message.param_oids))
            entry = PreparedEntry(message.name, message.sql, translated,
                                  order, prepared, oids)
        if message.name == "":
            self.statements.pop("", None)     # unnamed: silently replaced
        elif message.name in self.statements:
            raise ProtocolError(
                f'prepared statement "{message.name}" already exists')
        self.statements[message.name] = entry
        return [protocol.ParseComplete().encode()]

    def _statement_entry(self, name: str) -> PreparedEntry:
        entry = self.statements.get(name)
        if entry is None:
            exc = OperationalError(
                f'prepared statement "{name}" does not exist')
            exc.sqlstate = "26000"
            raise exc
        return entry

    def _portal(self, name: str) -> Portal:
        portal = self.portals.get(name)
        if portal is None:
            exc = OperationalError(f'portal "{name}" does not exist')
            exc.sqlstate = "34000"
            raise exc
        return portal

    def bind(self, message: protocol.Bind) -> list[bytes]:
        entry = self._statement_entry(message.statement)
        if any(code == 1 for code in message.result_formats):
            raise ProtocolError("binary result format is not supported")
        values = () if entry.prepared is None else entry.bind_values(
            message.params, message.param_formats)
        if message.portal == "":
            old = self.portals.pop("", None)  # unnamed: silently replaced
            if old is not None:
                old.close()
        elif message.portal in self.portals:
            raise ProtocolError(
                f'portal "{message.portal}" already exists')
        self.portals[message.portal] = Portal(message.portal, entry, values)
        return [protocol.BindComplete().encode()]

    def _entry_schema(self, entry: PreparedEntry) -> Schema | None:
        """The result schema of a prepared SELECT, without executing
        (provenance columns included — they are ordinary columns of the
        rewritten plan)."""
        prepared = entry.prepared
        if prepared is None or not prepared.is_select:
            return None
        cached = self.conn._get_plan(
            entry.translated, None, statement=prepared._statement)
        return cached.plan.schema

    def describe_statement(self, name: str) -> list[bytes]:
        entry = self._statement_entry(name)
        messages = [protocol.ParameterDescription(tuple(
            oid or protocol.OID_UNKNOWN
            for oid in entry.param_oids)).encode()]
        schema = self._entry_schema(entry)
        if schema is None:
            messages.append(protocol.NoData().encode())
        else:
            messages.append(protocol.describe_schema(schema).encode())
        return messages

    def describe_portal(self, name: str) -> list[bytes]:
        portal = self._portal(name)
        schema = self._entry_schema(portal.entry)
        if schema is None:
            return [protocol.NoData().encode()]
        return [protocol.describe_schema(schema).encode()]

    def execute(self, message: protocol.Execute) -> Iterator[bytes]:
        """Execute a portal, honouring ``max_rows`` with PortalSuspended
        so clients can stream a result across several Execute rounds."""
        portal = self._portal(message.portal)
        if portal.entry.prepared is None:         # empty statement: no-op
            yield protocol.EmptyQueryResponse().encode()
            return
        statement = portal.entry.prepared._statement
        self._check_failed(statement)
        if portal.completed:
            yield protocol.CommandComplete(portal.tag or "SELECT 0").encode()
            return
        if isinstance(statement, (CommitStmt, RollbackStmt)):
            portal.tag = self._finish_txn_control(statement)
            portal.completed = True
            yield protocol.CommandComplete(portal.tag).encode()
            return
        if not isinstance(statement, SelectStmt):
            outcome = portal.entry.prepared.execute(portal.values)
            portal.tag = command_tag(
                statement, outcome if isinstance(outcome, int) else 0)
            portal.completed = True
            yield protocol.CommandComplete(portal.tag).encode()
            return
        if portal.result is None:
            portal.result = portal.entry.prepared.execute(portal.values)
        yield from self._execute_select(portal, statement,
                                        message.max_rows)

    def _execute_select(self, portal: Portal, statement: SelectStmt,
                        max_rows: int) -> Iterator[bytes]:
        result = portal.result
        remaining = max_rows if max_rows > 0 else None
        sent_this_round = 0
        while True:
            want = STREAM_CHUNK if remaining is None \
                else min(STREAM_CHUNK, remaining - sent_this_round)
            if want == 0:
                yield protocol.PortalSuspended().encode()
                return
            rows = result.fetch(want, portal.position)
            chunk = bytearray()
            for row in rows:
                chunk += protocol.DataRow(tuple(
                    protocol.encode_text(value) for value in row)).encode()
            portal.position += len(rows)
            sent_this_round += len(rows)
            if len(rows) < want:                      # exhausted
                portal.completed = True
                portal.tag = command_tag(statement, portal.position)
                portal.close()
                chunk += protocol.CommandComplete(portal.tag).encode()
                yield bytes(chunk)
                return
            yield bytes(chunk)

    def close_statement(self, name: str) -> list[bytes]:
        entry = self.statements.pop(name, None)
        if entry is not None:
            # portals bound to it stay valid in PostgreSQL; we keep the
            # same behaviour since each Portal holds its own reference
            if entry.prepared is not None:
                entry.prepared.close()
        return [protocol.CloseComplete().encode()]

    def close_portal(self, name: str) -> list[bytes]:
        portal = self.portals.pop(name, None)
        if portal is not None:
            portal.close()
        return [protocol.CloseComplete().encode()]

    def sync(self) -> None:
        """Sync closes the unnamed portal (Postgres ends the implicit
        transaction here; the engine's autocommit already did)."""
        portal = self.portals.pop("", None)
        if portal is not None:
            portal.close()


def parse_single(sql: str) -> Statement:
    """Parse exactly one statement (used by tests and tools)."""
    return parse_statement(sql)


__all__ = [
    "BackendSession", "Portal", "PreparedEntry", "STREAM_CHUNK",
    "command_tag", "parse_statements", "translate_placeholders",
]
