"""Table and column statistics — the planner's knowledge of the data.

``ANALYZE [table]`` (see :mod:`repro.sql.parser`) walks a stored relation
once and records, per column: the distinct-value count, the NULL
fraction, min/max bounds and the most-common values with their
frequencies.  The resulting :class:`TableStats` live in the catalog's
:class:`StatsRegistry`; the cardinality estimator
(:mod:`repro.engine.cost`) reads them to turn the planner's fixed
heuristics into data-driven decisions — selectivity-ordered filters,
hash- vs index-join choices, join ordering and the automatic
provenance-strategy selection.

Statistics are a snapshot: DML does not update them (re-run ``ANALYZE``,
exactly as in PostgreSQL), but every ``ANALYZE`` bumps the registry's
generation counter, which the session folds into its plan-cache key so
stale plans are never served.
"""

from .collect import MCV_LIMIT, ColumnStats, TableStats, analyze_relation
from .registry import StatsRegistry

__all__ = [
    "MCV_LIMIT",
    "ColumnStats",
    "StatsRegistry",
    "TableStats",
    "analyze_relation",
]
