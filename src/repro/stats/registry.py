"""The per-catalog statistics registry."""

from __future__ import annotations

from .collect import TableStats


class StatsRegistry:
    """Maps lower-cased table names to their last-ANALYZE statistics.

    The ``generation`` counter bumps on every change (ANALYZE, table
    drop/replace); the session layer folds it — together with the
    catalog's DDL counter — into plan-cache keys, so plans compiled
    against old statistics are never served after new ones arrive.
    """

    def __init__(self) -> None:
        self._stats: dict[str, TableStats] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        return self._generation

    def bump(self) -> None:
        self._generation += 1

    def get(self, table: str) -> TableStats | None:
        return self._stats.get(table.lower())

    def put(self, table: str, stats: TableStats) -> None:
        self._stats[table.lower()] = stats
        self.bump()

    def discard(self, table: str) -> None:
        """Drop a table's statistics (table dropped or wholly replaced)."""
        if self._stats.pop(table.lower(), None) is not None:
            self.bump()

    def tables(self) -> list[str]:
        return list(self._stats)

    def snapshot(self) -> "StatsRegistry":
        """A point-in-time copy (shared immutable TableStats objects,
        copied mapping, pinned generation) for snapshot catalogs."""
        copy = StatsRegistry()
        copy._stats = dict(self._stats)
        copy._generation = self._generation
        return copy
