"""One-pass statistics collection over a stored relation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..relation import Relation

#: Most-common values kept per column.  When a column has at most this
#: many distinct values the MCV list is *complete* — every value's exact
#: frequency is known, so equality selectivities are exact, not estimates.
MCV_LIMIT = 10


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column, as of the last ``ANALYZE``."""

    name: str
    n_distinct: int                 # distinct non-NULL values
    null_frac: float                # fraction of NULL values
    min_value: Any = None           # None when empty or not comparable
    max_value: Any = None
    #: ``((value, frequency), ...)`` for the most common non-NULL values,
    #: frequency relative to the total row count, most frequent first.
    mcvs: tuple[tuple[Any, float], ...] = ()

    @property
    def mcv_complete(self) -> bool:
        """True iff every distinct value appears in the MCV list."""
        return self.n_distinct <= len(self.mcvs)

    def eq_fraction(self, value: Any) -> float | None:
        """Fraction of rows equal to *value*, or None if unknown.

        Exact when *value* is in the MCV list or the list is complete;
        otherwise the uniform estimate over the remaining distinct values.
        """
        if value is None:
            return 0.0
        for mcv, frequency in self.mcvs:
            if mcv == value:
                return frequency
        if self.mcv_complete:
            return 0.0
        remaining = self.n_distinct - len(self.mcvs)
        if remaining <= 0:
            return None
        covered = sum(frequency for _, frequency in self.mcvs)
        return max(0.0, (1.0 - self.null_frac - covered)) / remaining


@dataclass(frozen=True)
class TableStats:
    """Statistics of one table, as of the last ``ANALYZE``."""

    table: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def analyze_relation(name: str, relation: Relation) -> TableStats:
    """Compute :class:`TableStats` for *relation* in one pass per column."""
    rows = relation.rows
    total = len(rows)
    columns: dict[str, ColumnStats] = {}
    for position, attribute in enumerate(relation.schema):
        values = [row[position] for row in rows]
        non_null = [value for value in values if value is not None]
        counts = Counter(non_null)
        null_frac = (total - len(non_null)) / total if total else 0.0
        mcvs = tuple(
            (value, count / total)
            for value, count in counts.most_common(MCV_LIMIT))
        min_value = max_value = None
        if non_null:
            try:
                min_value = min(non_null)
                max_value = max(non_null)
            except TypeError:   # mixed non-comparable types
                pass
        columns[attribute.name] = ColumnStats(
            name=attribute.name,
            n_distinct=len(counts),
            null_frac=null_frac,
            min_value=min_value,
            max_value=max_value,
            mcvs=mcvs,
        )
    return TableStats(table=name, row_count=total, columns=columns)
