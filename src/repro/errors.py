"""Exception hierarchy for the repro provenance DBMS.

Two inheritance trees are interleaved here:

* the library's historic tree rooted at :class:`ReproError`, so existing
  ``except ReproError`` / ``except CatalogError`` call sites keep
  working unchanged;
* the complete DB-API 2.0 hierarchy (:pep:`249`): :class:`Warning`,
  :class:`Error`, :class:`InterfaceError`, :class:`DatabaseError`,
  :class:`DataError`, :class:`OperationalError`, :class:`IntegrityError`,
  :class:`InternalError`, :class:`ProgrammingError`,
  :class:`NotSupportedError`.

Every concrete library error is grafted onto the DB-API tree at the
standard place: parse/analysis/binding errors are
:class:`ProgrammingError`, runtime execution failures are
:class:`OperationalError`, unique-index violations are
:class:`IntegrityError`, and unsupported SQL or rewrite strategies are
:class:`NotSupportedError`.  Catching :class:`Error` (or the legacy
:class:`ReproError`, which is its base) catches everything the library
raises.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this library (legacy root;
    DB-API code should catch :class:`Error`, which is equivalent for all
    concrete errors)."""


class Warning(Exception):  # noqa: A001 - DB-API 2.0 mandates the name
    """DB-API 2.0 warning category (important non-fatal notices)."""


class Error(ReproError):
    """DB-API 2.0 base error: every concrete library error derives from
    this."""


class InterfaceError(Error):
    """The DB-API-flavored session API was misused.

    Examples: operating on a closed connection or cursor, fetching from a
    cursor with no pending result set, invalid session configuration.
    """


class DatabaseError(Error):
    """DB-API 2.0: an error related to the database itself."""


class DataError(DatabaseError):
    """DB-API 2.0: a problem with the processed data (bad cast, value
    out of range, division by zero)."""


class OperationalError(DatabaseError):
    """DB-API 2.0: an error in the database's operation, not necessarily
    the programmer's fault — e.g. a snapshot-isolation commit conflict
    (``could not serialize``), or a runtime execution failure."""


class InternalError(DatabaseError):
    """DB-API 2.0: the database hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """DB-API 2.0: the statement itself is wrong (syntax error, unknown
    table or column, wrong parameter arity)."""


class NotSupportedError(DatabaseError):
    """DB-API 2.0: the request uses a feature the engine does not
    support."""


class CatalogError(DatabaseError):
    """A catalog operation failed (unknown/duplicate table, bad schema)."""


class IntegrityError(CatalogError):
    """A constraint was violated — e.g. a duplicate value hit a UNIQUE
    index.  Also a :class:`CatalogError` (its historic class), so legacy
    ``except CatalogError`` handlers keep catching it."""


class SchemaError(ProgrammingError):
    """A schema is malformed or two schemas are incompatible."""


class SQLSyntaxError(ProgrammingError):
    """The SQL text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class AnalyzerError(ProgrammingError):
    """The SQL statement parsed but is semantically invalid.

    Examples: unknown column, ambiguous reference, aggregate nested inside
    another aggregate, a scalar sublink with more than one result column.
    """


class ExpressionError(DatabaseError):
    """An expression could not be typed, bound, or evaluated."""


class ExecutionError(OperationalError):
    """The executor failed at runtime (e.g. scalar sublink returned >1 row)."""


class RewriteError(NotSupportedError):
    """A provenance rewrite rule could not be applied.

    Raised for instance when the Left/Move strategies are requested for a
    query containing correlated sublinks, or Unn for a sublink pattern it
    does not support.
    """


class UnsupportedFeatureError(NotSupportedError):
    """The query uses a SQL feature outside the supported subset."""


class BindError(ProgrammingError):
    """Parameter binding failed.

    Raised by the session API when the values passed to a prepared
    statement or cursor do not match the statement's ``?`` placeholders —
    wrong arity, or bindings supplied for a statement without parameters.
    """


class TransactionError(OperationalError):
    """A transaction could not proceed — e.g. a snapshot-isolation commit
    found that a concurrently committed transaction already changed a
    table this one wrote (first-committer-wins)."""


class SerializationError(TransactionError):
    """A commit lost a first-committer-wins race: a concurrently
    committed transaction already changed a table, view or index this
    one touched.  Retrying the whole transaction on a fresh snapshot is
    always safe (autocommit statements retry automatically)."""


class StorageError(OperationalError):
    """Durable storage failed: a snapshot or WAL file is missing its
    magic, a record's CRC32 does not match its payload, a value carries
    an unknown type tag, or the engine was asked to persist without a
    database directory attached."""


class ProtocolError(OperationalError):
    """The network wire protocol was violated: a malformed or truncated
    message, an unknown message type, a length field that disagrees with
    its payload, or a message arriving in the wrong protocol phase."""


class AuthenticationError(OperationalError):
    """A network client failed to authenticate: unknown user or
    database, wrong password, or an unsupported authentication
    exchange."""


class ConnectionLimitError(OperationalError):
    """The server refused a new connection because its admission limit
    (``max_connections``) is reached."""


class ServerShutdownError(OperationalError):
    """The server is shutting down and terminated this session after
    draining its in-flight work."""
