"""Exception hierarchy for the repro provenance DBMS.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch everything with a single ``except`` clause while still
being able to discriminate parse errors from semantic errors and runtime
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this library."""


class CatalogError(ReproError):
    """A catalog operation failed (unknown/duplicate table, bad schema)."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class AnalyzerError(ReproError):
    """The SQL statement parsed but is semantically invalid.

    Examples: unknown column, ambiguous reference, aggregate nested inside
    another aggregate, a scalar sublink with more than one result column.
    """


class ExpressionError(ReproError):
    """An expression could not be typed, bound, or evaluated."""


class ExecutionError(ReproError):
    """The executor failed at runtime (e.g. scalar sublink returned >1 row)."""


class RewriteError(ReproError):
    """A provenance rewrite rule could not be applied.

    Raised for instance when the Left/Move strategies are requested for a
    query containing correlated sublinks, or Unn for a sublink pattern it
    does not support.
    """


class UnsupportedFeatureError(ReproError):
    """The query uses a SQL feature outside the supported subset."""


class BindError(ReproError):
    """Parameter binding failed.

    Raised by the session API when the values passed to a prepared
    statement or cursor do not match the statement's ``?`` placeholders —
    wrong arity, or bindings supplied for a statement without parameters.
    """


class InterfaceError(ReproError):
    """The DB-API-flavored session API was misused.

    Examples: operating on a closed connection or cursor, fetching from a
    cursor with no pending result set.
    """
