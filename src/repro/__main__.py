"""``python -m repro`` starts the interactive shell."""

import sys

from .cli import main

sys.exit(main())
