"""Expression language: AST nodes, registries and the 3VL evaluator."""

from .ast import (
    AggCall,
    Arith,
    BoolOp,
    Case,
    Cast,
    Col,
    Comparison,
    Const,
    Expr,
    FuncCall,
    IsNull,
    Like,
    Neg,
    Not,
    NullSafeEq,
    Sublink,
    SublinkKind,
    and_all,
    or_all,
)
from .evaluator import EvalContext, Frame, evaluate
from .functions import SCALAR_FUNCTIONS, call_function
from .aggregates import AGGREGATE_FUNCTIONS, Accumulator, make_accumulator

__all__ = [
    "AggCall", "Arith", "BoolOp", "Case", "Cast", "Col", "Comparison",
    "Const", "Expr", "FuncCall", "IsNull", "Like", "Neg", "Not",
    "NullSafeEq", "Sublink", "SublinkKind", "and_all", "or_all",
    "EvalContext", "Frame", "evaluate",
    "SCALAR_FUNCTIONS", "call_function",
    "AGGREGATE_FUNCTIONS", "Accumulator", "make_accumulator",
]
