"""The expression evaluator.

Evaluation happens against an :class:`EvalContext`, which is a stack of
:class:`Frame` objects: ``frames[-1]`` is the current operator's input row,
``frames[-1-k]`` the row of the query *k* sublink boundaries out (see
:class:`~repro.expressions.ast.Col`).

Sublink expressions are delegated to a *subquery runner* — the execution
engine passes itself in — so this module stays independent of the engine.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Protocol, Sequence

from ..datatypes import (
    arithmetic, compare, is_true, negate, null_safe_equal, tv_all, tv_and,
    tv_any, tv_not, tv_or,
)
from ..errors import ExecutionError, ExpressionError
from ..datatypes import SQLType
from .ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, Expr,
    FuncCall, IsNull, Like, Neg, Not, NullSafeEq, Param, Sublink,
    SublinkKind,
)
from .functions import call_function


class Frame:
    """One row visible to the evaluator, with a name->position index."""

    __slots__ = ("index", "row")

    def __init__(self, index: dict[str, int], row: Sequence[Any]):
        self.index = index
        self.row = row

    @classmethod
    def index_for(cls, names: Sequence[str]) -> dict[str, int]:
        """Precompute the name index shared by all rows of an operator."""
        return {name: position for position, name in enumerate(names)}


class SubqueryRunner(Protocol):
    """The engine-facing hook used to evaluate sublink queries."""

    def run_subquery(self, query: Any,
                     frames: tuple[Frame, ...]) -> list[tuple]:
        """Execute *query* with *frames* visible as outer rows."""
        ...


class EvalContext:
    """Evaluation state: visible frames, subquery runner, and the values
    bound to ``?`` placeholders of the statement being executed."""

    __slots__ = ("frames", "runner", "params")

    def __init__(self, frames: tuple[Frame, ...],
                 runner: SubqueryRunner | None = None,
                 params: Sequence[Any] = ()):
        self.frames = frames
        self.runner = runner
        self.params = params

    def push(self, frame: Frame) -> "EvalContext":
        """Context with one more (innermost) frame."""
        return EvalContext((*self.frames, frame), self.runner, self.params)

    def param(self, index: int) -> Any:
        """Value bound to the *index*-th ``?`` placeholder."""
        try:
            return self.params[index]
        except IndexError:
            raise ExpressionError(
                f"parameter ?{index + 1} has no bound value "
                f"({len(self.params)} given)") from None

    def lookup(self, name: str, level: int) -> Any:
        """Value of column *name*, *level* frames out."""
        try:
            frame = self.frames[-1 - level]
        except IndexError:
            raise ExpressionError(
                f"column reference {name!r} at level {level} exceeds "
                f"available {len(self.frames)} frame(s)") from None
        try:
            return frame.row[frame.index[name]]
        except KeyError:
            raise ExpressionError(
                f"unknown column {name!r} at level {level}; frame has "
                f"{sorted(frame.index)}") from None


_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_regex(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile("".join(parts), re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _cast(value: Any, type_name: str) -> Any:
    if value is None:
        return None
    target = SQLType.parse(type_name)
    try:
        if target == SQLType.INTEGER:
            return int(value)
        if target == SQLType.FLOAT:
            return float(value)
        if target in (SQLType.TEXT, SQLType.DATE):
            return str(value)
        if target == SQLType.BOOLEAN:
            if isinstance(value, str):
                return value.strip().lower() in ("t", "true", "1", "yes")
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise ExpressionError(f"cannot cast {value!r} to {type_name}") from exc
    return value


def _eval_sublink(node: Sublink, ctx: EvalContext) -> Any:
    if ctx.runner is None:
        raise ExecutionError(
            "sublink evaluated without an execution engine attached")
    rows = ctx.runner.run_subquery(node.query, ctx.frames)
    if node.kind == SublinkKind.EXISTS:
        return len(rows) > 0
    if node.kind == SublinkKind.SCALAR:
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError(
                f"scalar sublink returned {len(rows)} rows (expected <= 1)")
        return rows[0][0]
    test_value = evaluate(node.test, ctx)
    if node.kind == SublinkKind.ANY:
        return tv_any(
            compare(node.op, test_value, row[0]) for row in rows)
    if node.kind == SublinkKind.ALL:
        return tv_all(
            compare(node.op, test_value, row[0]) for row in rows)
    raise ExpressionError(f"unknown sublink kind {node.kind}")


def evaluate(expr: Expr, ctx: EvalContext) -> Any:
    """Evaluate *expr* in *ctx*; boolean results use 3VL (None = unknown)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Param):
        return ctx.param(expr.index)
    if isinstance(expr, Col):
        return ctx.lookup(expr.name, expr.level)
    if isinstance(expr, Comparison):
        return compare(expr.op, evaluate(expr.left, ctx),
                       evaluate(expr.right, ctx))
    if isinstance(expr, NullSafeEq):
        return null_safe_equal(evaluate(expr.left, ctx),
                               evaluate(expr.right, ctx))
    if isinstance(expr, BoolOp):
        if expr.op == "and":
            result: Any = True
            for item in expr.items:
                result = tv_and(result, evaluate(item, ctx))
                if result is False:
                    return False
            return result
        result = False
        for item in expr.items:
            result = tv_or(result, evaluate(item, ctx))
            if result is True:
                return True
        return result
    if isinstance(expr, Not):
        return tv_not(evaluate(expr.operand, ctx))
    if isinstance(expr, IsNull):
        return evaluate(expr.operand, ctx) is None
    if isinstance(expr, Arith):
        return arithmetic(expr.op, evaluate(expr.left, ctx),
                          evaluate(expr.right, ctx))
    if isinstance(expr, Neg):
        return negate(evaluate(expr.operand, ctx))
    if isinstance(expr, FuncCall):
        return call_function(
            expr.name, [evaluate(arg, ctx) for arg in expr.args])
    if isinstance(expr, Like):
        operand = evaluate(expr.operand, ctx)
        pattern = evaluate(expr.pattern, ctx)
        if operand is None or pattern is None:
            return None
        return _like_regex(pattern).fullmatch(operand) is not None
    if isinstance(expr, Cast):
        return _cast(evaluate(expr.operand, ctx), expr.type_name)
    if isinstance(expr, Case):
        for condition, value in expr.whens:
            if is_true(evaluate(condition, ctx)):
                return evaluate(value, ctx)
        return evaluate(expr.default, ctx)
    if isinstance(expr, Sublink):
        return _eval_sublink(expr, ctx)
    if isinstance(expr, AggCall):
        raise ExpressionError(
            "aggregate call evaluated outside an Aggregate operator")
    raise ExpressionError(f"cannot evaluate expression node {expr!r}")


def evaluate_predicate(expr: Expr, ctx: EvalContext) -> bool:
    """WHERE semantics: unknown filters the row out."""
    return is_true(evaluate(expr, ctx))
