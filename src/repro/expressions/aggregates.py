"""Aggregate function implementations.

Each aggregate is an :class:`Accumulator`: feed it values with ``add`` and
read the result with ``result``.  SQL semantics: NULL inputs are skipped by
every aggregate except ``count(*)``; an empty input yields NULL for all
aggregates except ``count``/``count(*)`` which yield 0.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ExpressionError


class Accumulator:
    """Base class: one aggregate computation over one group.

    Besides the ``add``/``result`` protocol, *combinable* accumulators
    support two-phase (partial -> final) aggregation: ``state()``
    exports the partial state a worker computed over its slice of a
    group, ``merge(state)`` folds such a state into this accumulator.
    ``DISTINCT`` accumulators are not combinable (their dedup set is not
    mergeable without shipping it wholesale), so the parallel lowering
    pass keeps them serial.
    """

    combinable = True

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def state(self) -> Any:
        raise NotImplementedError

    def merge(self, state: Any) -> None:
        raise NotImplementedError


class _Count(Accumulator):
    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.n += 1

    def result(self) -> int:
        return self.n

    def state(self) -> int:
        return self.n

    def merge(self, state: int) -> None:
        self.n += state


class _CountStar(Accumulator):
    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        self.n += 1

    def result(self) -> int:
        return self.n

    def state(self) -> int:
        return self.n

    def merge(self, state: int) -> None:
        self.n += state


class _Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total

    def state(self) -> Any:
        return self.total

    def merge(self, state: Any) -> None:
        if state is None:
            return
        self.total = state if self.total is None else self.total + state


class _Avg(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.n += 1

    def result(self) -> Any:
        return self.total / self.n if self.n else None

    def state(self) -> tuple:
        return (self.total, self.n)

    def merge(self, state: tuple) -> None:
        total, n = state
        self.total += total
        self.n += n


class _Min(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best

    def state(self) -> Any:
        return self.best

    def merge(self, state: Any) -> None:
        if state is not None and (self.best is None or state < self.best):
            self.best = state


class _Max(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best

    def state(self) -> Any:
        return self.best

    def merge(self, state: Any) -> None:
        if state is not None and (self.best is None or state > self.best):
            self.best = state


class _Distinct(Accumulator):
    """Wraps another accumulator, feeding it each distinct value once."""

    combinable = False

    def __init__(self, inner: Accumulator) -> None:
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


AGGREGATE_FUNCTIONS: dict[str, Callable[[], Accumulator]] = {
    "count": _Count,
    "count(*)": _CountStar,
    "sum": _Sum,
    "avg": _Avg,
    "min": _Min,
    "max": _Max,
}


def make_accumulator(name: str, star: bool = False,
                     distinct: bool = False) -> Accumulator:
    """Instantiate the accumulator for aggregate *name*.

    ``star=True`` selects ``count(*)``.  ``distinct=True`` wraps the
    accumulator so duplicates are fed only once.
    """
    key = "count(*)" if (star and name.lower() == "count") else name.lower()
    try:
        accumulator = AGGREGATE_FUNCTIONS[key]()
    except KeyError:
        raise ExpressionError(f"unknown aggregate {name!r}") from None
    if distinct:
        accumulator = _Distinct(accumulator)
    return accumulator
