"""Rendering of expression trees as SQL-ish text (debugging, EXPLAIN)."""

from __future__ import annotations

from ..datatypes import sql_literal
from .ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, Expr,
    FuncCall, IsNull, Like, Neg, Not, NullSafeEq, Param, Sublink,
    SublinkKind,
)


def format_expr(expr: Expr) -> str:
    """Render *expr* as readable text; sublink queries render as a tag."""
    if isinstance(expr, Const):
        return sql_literal(expr.value)
    if isinstance(expr, Param):
        return f"?{expr.index + 1}"
    if isinstance(expr, Col):
        if expr.level:
            return f"{expr.name}^{expr.level}"
        return expr.name
    if isinstance(expr, Comparison):
        return (f"({format_expr(expr.left)} {expr.op} "
                f"{format_expr(expr.right)})")
    if isinstance(expr, NullSafeEq):
        return (f"({format_expr(expr.left)} =n "
                f"{format_expr(expr.right)})")
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(format_expr(i) for i in expr.items) + ")"
    if isinstance(expr, Not):
        return f"(NOT {format_expr(expr.operand)})"
    if isinstance(expr, IsNull):
        return f"({format_expr(expr.operand)} IS NULL)"
    if isinstance(expr, Arith):
        return (f"({format_expr(expr.left)} {expr.op} "
                f"{format_expr(expr.right)})")
    if isinstance(expr, Neg):
        return f"(-{format_expr(expr.operand)})"
    if isinstance(expr, FuncCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Like):
        return (f"({format_expr(expr.operand)} LIKE "
                f"{format_expr(expr.pattern)})")
    if isinstance(expr, Cast):
        return f"CAST({format_expr(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, Case):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(
                f"WHEN {format_expr(condition)} THEN {format_expr(value)}")
        parts.append(f"ELSE {format_expr(expr.default)} END")
        return " ".join(parts)
    if isinstance(expr, AggCall):
        if expr.arg is None:
            return f"{expr.name}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{format_expr(expr.arg)})"
    if isinstance(expr, Sublink):
        from ..algebra.printer import summarize
        body = summarize(expr.query)
        if expr.kind == SublinkKind.EXISTS:
            return f"EXISTS({body})"
        if expr.kind == SublinkKind.SCALAR:
            return f"SCALAR({body})"
        return (f"({format_expr(expr.test)} {expr.op} "
                f"{expr.kind.name}({body}))")
    return f"<{type(expr).__name__}>"
