"""Expression AST.

Expressions are small immutable-by-convention trees.  Two design points
matter for the provenance rewrites:

* **Attributes are referenced by name**, never by position.  The SQL
  analyzer guarantees unique attribute names per scope, so rewrite rules can
  splice projections in and out without re-indexing anything.

* **Correlation uses de-Bruijn-style levels.**  ``Col(name, level=0)`` reads
  the current operator's input row; ``Col(name, level=k)`` reads the row of
  the query *k* sublink boundaries further out.  The Gen strategy relocates
  expressions across sublink boundaries and adjusts levels with
  :func:`repro.algebra.trees.shift_correlation`.

The :class:`Sublink` node is the algebraic counterpart of the paper's
nesting operators (Figure 1): ``ANY``, ``ALL``, ``EXISTS`` and the bare
``Tsub`` scalar sublink.  Its ``query`` attribute holds an *algebra*
operator tree (see :mod:`repro.algebra.operators`); the import cycle is
avoided by storing it untyped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Sequence


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (excluding sublink query trees)."""
        return ()

    def replace_children(self, new: Sequence["Expr"]) -> "Expr":
        """Rebuild this node with *new* children (same arity/order)."""
        assert not new
        return self

    # -- convenience builders used heavily by the rewrite rules ------------

    def eq(self, other: "Expr") -> "Comparison":
        """``self = other``"""
        return Comparison("=", self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import format_expr
        return format_expr(self)


@dataclass(eq=True, frozen=True, repr=False)
class Const(Expr):
    """A literal value (NULL is ``Const(None)``)."""

    value: Any


TRUE = Const(True)
FALSE = Const(False)
NULL_CONST = Const(None)


@dataclass(eq=True, frozen=True, repr=False)
class Col(Expr):
    """A named attribute reference, ``level`` sublink boundaries out."""

    name: str
    level: int = 0


@dataclass(eq=True, frozen=True, repr=False)
class Param(Expr):
    """A ``?`` parameter placeholder, bound at execution time.

    ``index`` is the zero-based position of the placeholder in the SQL
    text; :class:`~repro.expressions.evaluator.EvalContext` carries the
    bound values.  Placeholders survive analysis and rewriting unchanged,
    which is what lets a prepared plan be re-executed with new bindings
    without re-planning.
    """

    index: int


@dataclass(eq=True, frozen=True, repr=False)
class Comparison(Expr):
    """``left op right`` with op in ``= <> < <= > >=`` (3VL result)."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def replace_children(self, new):
        return Comparison(self.op, new[0], new[1])


@dataclass(eq=True, frozen=True, repr=False)
class NullSafeEq(Expr):
    """The paper's ``=n``: NULL equals NULL, always two-valued."""

    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def replace_children(self, new):
        return NullSafeEq(new[0], new[1])


@dataclass(eq=True, frozen=True, repr=False)
class BoolOp(Expr):
    """N-ary Kleene conjunction/disjunction; ``op`` is ``and``/``or``."""

    op: str
    items: tuple[Expr, ...]

    def children(self):
        return self.items

    def replace_children(self, new):
        return BoolOp(self.op, tuple(new))


def and_all(items: Iterable[Expr]) -> Expr:
    """Conjunction of *items*, flattening and dropping literal TRUEs."""
    flat: list[Expr] = []
    for item in items:
        if isinstance(item, BoolOp) and item.op == "and":
            flat.extend(item.items)
        elif item == TRUE:
            continue
        else:
            flat.append(item)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return BoolOp("and", tuple(flat))


def conjuncts_of(expr: Expr) -> tuple[Expr, ...]:
    """The AND-conjuncts of *expr* (just *expr* when it is not an AND).

    The shared inverse of :func:`and_all`, used wherever a pass takes a
    condition apart conjunct by conjunct (optimizer pushdown, physical
    lowering, the Unn strategy's applicability test).
    """
    if isinstance(expr, BoolOp) and expr.op == "and":
        return expr.items
    return (expr,)


def or_all(items: Iterable[Expr]) -> Expr:
    """Disjunction of *items*, flattening and dropping literal FALSEs."""
    flat: list[Expr] = []
    for item in items:
        if isinstance(item, BoolOp) and item.op == "or":
            flat.extend(item.items)
        elif item == FALSE:
            continue
        else:
            flat.append(item)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return BoolOp("or", tuple(flat))


@dataclass(eq=True, frozen=True, repr=False)
class Not(Expr):
    """Kleene negation."""

    operand: Expr

    def children(self):
        return (self.operand,)

    def replace_children(self, new):
        return Not(new[0])


@dataclass(eq=True, frozen=True, repr=False)
class IsNull(Expr):
    """``operand IS NULL`` (two-valued)."""

    operand: Expr

    def children(self):
        return (self.operand,)

    def replace_children(self, new):
        return IsNull(new[0])


@dataclass(eq=True, frozen=True, repr=False)
class Arith(Expr):
    """Binary arithmetic / concatenation: ``+ - * / % ||``."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def replace_children(self, new):
        return Arith(self.op, new[0], new[1])


@dataclass(eq=True, frozen=True, repr=False)
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def children(self):
        return (self.operand,)

    def replace_children(self, new):
        return Neg(new[0])


@dataclass(eq=True, frozen=True, repr=False)
class FuncCall(Expr):
    """A scalar function call, dispatched through the function registry."""

    name: str
    args: tuple[Expr, ...]

    def children(self):
        return self.args

    def replace_children(self, new):
        return FuncCall(self.name, tuple(new))


@dataclass(eq=True, frozen=True, repr=False)
class Like(Expr):
    """SQL ``LIKE`` with ``%``/``_`` wildcards (pattern is an expression)."""

    operand: Expr
    pattern: Expr

    def children(self):
        return (self.operand, self.pattern)

    def replace_children(self, new):
        return Like(new[0], new[1])


@dataclass(eq=True, frozen=True, repr=False)
class Cast(Expr):
    """``CAST(operand AS type_name)`` — best-effort dynamic cast."""

    operand: Expr
    type_name: str

    def children(self):
        return (self.operand,)

    def replace_children(self, new):
        return Cast(new[0], self.type_name)


@dataclass(eq=True, frozen=True, repr=False)
class Case(Expr):
    """``CASE WHEN c1 THEN v1 ... [ELSE e] END`` (searched form)."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr = NULL_CONST

    def children(self):
        flat: list[Expr] = []
        for cond, value in self.whens:
            flat.append(cond)
            flat.append(value)
        flat.append(self.default)
        return tuple(flat)

    def replace_children(self, new):
        pairs = tuple(
            (new[i], new[i + 1]) for i in range(0, len(new) - 1, 2))
        return Case(pairs, new[-1])


@dataclass(eq=True, frozen=True, repr=False)
class AggCall(Expr):
    """An aggregate function call.

    Only valid in the aggregate list of an ``Aggregate`` operator (the
    analyzer normalizes queries so this holds).  ``arg`` is ``None`` for
    ``count(*)``.
    """

    name: str
    arg: Expr | None = None
    distinct: bool = False

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    def replace_children(self, new):
        arg = new[0] if new else None
        return AggCall(self.name, arg, self.distinct)


class SublinkKind(Enum):
    """The four nesting operators of the paper's Figure 1."""

    ANY = "any"
    ALL = "all"
    EXISTS = "exists"
    SCALAR = "scalar"   # bare Tsub — at most one row, exactly one column


@dataclass(eq=False, repr=False)
class Sublink(Expr):
    """A nested subquery used as an expression (``Csub`` in the paper).

    ``test`` and ``op`` are only meaningful for ANY/ALL sublinks, where the
    construct denotes ``test op ANY/ALL (query)``.  ``query`` is an algebra
    operator tree; it may contain correlated references (``Col`` with
    ``level >= 1``) to enclosing scopes.

    Equality is identity-based because algebra trees compare by identity.
    """

    kind: SublinkKind
    query: Any                      # algebra operator tree
    op: str | None = None           # comparison operator for ANY/ALL
    test: Expr | None = None        # left-hand expression for ANY/ALL

    def children(self):
        return (self.test,) if self.test is not None else ()

    def replace_children(self, new):
        test = new[0] if new else None
        return Sublink(self.kind, self.query, self.op, test)


# ---------------------------------------------------------------------------
# Tree walking helpers
# ---------------------------------------------------------------------------

def walk(expr: Expr, into_sublinks: bool = False):
    """Yield *expr* and all nodes below it (pre-order).

    With ``into_sublinks=True``, also descends into the expressions of the
    algebra trees hanging off :class:`Sublink` nodes.
    """
    yield expr
    for child in expr.children():
        yield from walk(child, into_sublinks)
    if isinstance(expr, Sublink) and into_sublinks:
        from ..algebra import trees
        for inner in trees.iter_expressions(expr.query):
            yield from walk(inner, into_sublinks)


def transform(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewrite: apply *fn* to every node, keeping nodes where
    *fn* returns None.  Sublink query trees are not entered."""
    new_children = [transform(child, fn) for child in expr.children()]
    if new_children != list(expr.children()):
        expr = expr.replace_children(new_children)
    replacement = fn(expr)
    return expr if replacement is None else replacement


def collect_sublinks(expr: Expr) -> list[Sublink]:
    """Top-level sublinks of *expr* (not those nested inside other sublink
    queries — the rewriter reaches those recursively)."""
    return [node for node in walk(expr) if isinstance(node, Sublink)]


def collect_columns(expr: Expr, level: int = 0) -> list[Col]:
    """All level-*level* column references in *expr* (not inside sublinks)."""
    return [node for node in walk(expr)
            if isinstance(node, Col) and node.level == level]


def has_aggregate(expr: Expr) -> bool:
    """True iff *expr* contains an :class:`AggCall` outside sublinks."""
    return any(isinstance(node, AggCall) for node in walk(expr))
