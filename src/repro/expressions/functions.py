"""Scalar function registry.

Functions are looked up by lower-case name.  Every function receives
already-evaluated argument values and must implement SQL NULL propagation
itself where appropriate (most do "NULL in, NULL out"; ``coalesce`` is the
notable exception).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..errors import ExpressionError


def _null_in_null_out(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)
    return wrapper


def _substr(value: str, start: int, length: int | None = None) -> str:
    """1-based SQL substring; negative/overlong ranges clamp like SQL."""
    begin = max(start - 1, 0)
    if length is None:
        return value[begin:]
    if length < 0:
        raise ExpressionError("negative length in substr()")
    return value[begin:begin + length]


def _round(value: float, digits: int = 0) -> float:
    return round(value, digits)


def _sign(value: float) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": _null_in_null_out(abs),
    "ceil": _null_in_null_out(math.ceil),
    "floor": _null_in_null_out(math.floor),
    "round": _null_in_null_out(_round),
    "sqrt": _null_in_null_out(math.sqrt),
    "power": _null_in_null_out(pow),
    "mod": _null_in_null_out(lambda a, b: a % b),
    "sign": _null_in_null_out(_sign),
    "length": _null_in_null_out(len),
    "upper": _null_in_null_out(str.upper),
    "lower": _null_in_null_out(str.lower),
    "trim": _null_in_null_out(str.strip),
    "ltrim": _null_in_null_out(str.lstrip),
    "rtrim": _null_in_null_out(str.rstrip),
    "substr": _null_in_null_out(_substr),
    "substring": _null_in_null_out(_substr),
    "replace": _null_in_null_out(str.replace),
    "concat": lambda *args: "".join(str(a) for a in args if a is not None),
    "coalesce": lambda *args: next(
        (a for a in args if a is not None), None),
    "nullif": lambda a, b: None if a == b else a,
    "greatest": _null_in_null_out(max),
    "least": _null_in_null_out(min),
}


def call_function(name: str, args: list[Any]) -> Any:
    """Dispatch a scalar function call; raises for unknown names."""
    try:
        fn = SCALAR_FUNCTIONS[name.lower()]
    except KeyError:
        raise ExpressionError(f"unknown function {name!r}") from None
    try:
        return fn(*args)
    except ExpressionError:
        raise
    except Exception as exc:
        raise ExpressionError(f"error in {name}({args!r}): {exc}") from exc


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Register a user-defined scalar function (UDF support)."""
    SCALAR_FUNCTIONS[name.lower()] = fn
