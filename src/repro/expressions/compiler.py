"""Expression compiler: AST -> Python closures.

The tree-walking evaluator re-dispatches on node types for every row; the
compiler performs that dispatch once, producing a closure over an
:class:`~repro.expressions.evaluator.EvalContext`.  Column positions are
*not* baked in (frames carry their own name index), so one compiled
expression works under any schema that provides the referenced names —
which is exactly what the provenance rewrites rely on.

This is the engine's counterpart of PostgreSQL's expression JIT; the
ablation benchmark (``benchmarks/bench_ablation.py``) measures its
effect.  Semantics are identical to :func:`repro.expressions.evaluator.
evaluate` — the property test in ``tests/test_compiler.py`` checks them
against each other on random expressions.
"""

from __future__ import annotations

from typing import Any, Callable

from ..datatypes import (
    arithmetic, compare, is_true, negate, null_safe_equal, tv_not,
)
from ..errors import ExpressionError
from .ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, Expr,
    FuncCall, IsNull, Like, Neg, Not, NullSafeEq, Param, Sublink,
)
from .evaluator import EvalContext, _cast, _eval_sublink, _like_regex
from .functions import SCALAR_FUNCTIONS

Compiled = Callable[[EvalContext], Any]


def compile_expr(expr: Expr) -> Compiled:
    """Compile *expr* into a closure over an :class:`EvalContext`."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda ctx: value

    if isinstance(expr, Param):
        index = expr.index
        return lambda ctx: ctx.param(index)

    if isinstance(expr, Col):
        name = expr.name
        level = expr.level
        if level == 0:
            def read_current(ctx: EvalContext) -> Any:
                frame = ctx.frames[-1]
                return frame.row[frame.index[name]]
            return read_current

        def read_outer(ctx: EvalContext) -> Any:
            return ctx.lookup(name, level)
        return read_outer

    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: compare(op, left(ctx), right(ctx))

    if isinstance(expr, NullSafeEq):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: null_safe_equal(left(ctx), right(ctx))

    if isinstance(expr, BoolOp):
        items = [compile_expr(item) for item in expr.items]
        if expr.op == "and":
            def conjunction(ctx: EvalContext) -> Any:
                result: Any = True
                for item in items:
                    value = item(ctx)
                    if value is False:
                        return False
                    if value is None:
                        result = None
                return result
            return conjunction

        def disjunction(ctx: EvalContext) -> Any:
            result: Any = False
            for item in items:
                value = item(ctx)
                if value is True:
                    return True
                if value is None:
                    result = None
            return result
        return disjunction

    if isinstance(expr, Not):
        operand = compile_expr(expr.operand)
        return lambda ctx: tv_not(operand(ctx))

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand)
        return lambda ctx: operand(ctx) is None

    if isinstance(expr, Arith):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: arithmetic(op, left(ctx), right(ctx))

    if isinstance(expr, Neg):
        operand = compile_expr(expr.operand)
        return lambda ctx: negate(operand(ctx))

    if isinstance(expr, FuncCall):
        try:
            fn = SCALAR_FUNCTIONS[expr.name.lower()]
        except KeyError:
            raise ExpressionError(
                f"unknown function {expr.name!r}") from None
        args = [compile_expr(arg) for arg in expr.args]

        def call(ctx: EvalContext) -> Any:
            try:
                return fn(*[arg(ctx) for arg in args])
            except ExpressionError:
                raise
            except Exception as exc:
                raise ExpressionError(
                    f"error in {expr.name}: {exc}") from exc
        return call

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand)
        pattern = compile_expr(expr.pattern)

        def like(ctx: EvalContext) -> Any:
            value = operand(ctx)
            text = pattern(ctx)
            if value is None or text is None:
                return None
            return _like_regex(text).fullmatch(value) is not None
        return like

    if isinstance(expr, Cast):
        operand = compile_expr(expr.operand)
        type_name = expr.type_name
        return lambda ctx: _cast(operand(ctx), type_name)

    if isinstance(expr, Case):
        whens = [(compile_expr(cond), compile_expr(value))
                 for cond, value in expr.whens]
        default = compile_expr(expr.default)

        def case(ctx: EvalContext) -> Any:
            for condition, value in whens:
                if is_true(condition(ctx)):
                    return value(ctx)
            return default(ctx)
        return case

    if isinstance(expr, Sublink):
        node = expr
        return lambda ctx: _eval_sublink(node, ctx)

    if isinstance(expr, AggCall):
        raise ExpressionError(
            "aggregate call compiled outside an Aggregate operator")

    raise ExpressionError(f"cannot compile expression node {expr!r}")
