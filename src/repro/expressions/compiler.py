"""Expression compiler: AST -> Python closures.

The tree-walking evaluator re-dispatches on node types for every row; the
compiler performs that dispatch once, producing a closure over an
:class:`~repro.expressions.evaluator.EvalContext`.  Column positions are
*not* baked in (frames carry their own name index), so one compiled
expression works under any schema that provides the referenced names —
which is exactly what the provenance rewrites rely on.

This is the engine's counterpart of PostgreSQL's expression JIT; the
ablation benchmark (``benchmarks/bench_ablation.py``) measures its
effect.  Semantics are identical to :func:`repro.expressions.evaluator.
evaluate` — the property test in ``tests/test_compiler.py`` checks them
against each other on random expressions.

Two compilation surfaces:

* :func:`compile_expr` — per-row closure over an :class:`EvalContext`
  (the materializing engine's path).
* the **batch compilers** (:func:`compile_batch_predicate`,
  :func:`compile_batch_projector`, :func:`compile_batch_values`) — used by
  the pipelined engine: one call evaluates a whole row batch.  When the
  expression is *context-free* (level-0 columns, constants, parameters-
  free scalar structure), column positions are resolved against the
  operator's input schema once at compile time and no
  :class:`EvalContext`/:class:`Frame` objects are allocated at all;
  otherwise a single mutable frame is reused across the batch instead of
  allocating one per row.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..datatypes import (
    _comparable, arithmetic, compare, is_true, negate, null_safe_equal,
    tv_not,
)
from ..errors import ExpressionError
from .ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, Expr,
    FuncCall, IsNull, Like, Neg, Not, NullSafeEq, Param, Sublink,
)
from .evaluator import EvalContext, _cast, _eval_sublink, _like_regex
from .functions import SCALAR_FUNCTIONS

Compiled = Callable[[EvalContext], Any]


def compile_expr(expr: Expr) -> Compiled:
    """Compile *expr* into a closure over an :class:`EvalContext`."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda ctx: value

    if isinstance(expr, Param):
        index = expr.index
        return lambda ctx: ctx.param(index)

    if isinstance(expr, Col):
        name = expr.name
        level = expr.level
        if level == 0:
            def read_current(ctx: EvalContext) -> Any:
                frame = ctx.frames[-1]
                return frame.row[frame.index[name]]
            return read_current

        def read_outer(ctx: EvalContext) -> Any:
            return ctx.lookup(name, level)
        return read_outer

    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: compare(op, left(ctx), right(ctx))

    if isinstance(expr, NullSafeEq):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: null_safe_equal(left(ctx), right(ctx))

    if isinstance(expr, BoolOp):
        items = [compile_expr(item) for item in expr.items]
        if expr.op == "and":
            def conjunction(ctx: EvalContext) -> Any:
                result: Any = True
                for item in items:
                    value = item(ctx)
                    if value is False:
                        return False
                    if value is None:
                        result = None
                return result
            return conjunction

        def disjunction(ctx: EvalContext) -> Any:
            result: Any = False
            for item in items:
                value = item(ctx)
                if value is True:
                    return True
                if value is None:
                    result = None
            return result
        return disjunction

    if isinstance(expr, Not):
        operand = compile_expr(expr.operand)
        return lambda ctx: tv_not(operand(ctx))

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand)
        return lambda ctx: operand(ctx) is None

    if isinstance(expr, Arith):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: arithmetic(op, left(ctx), right(ctx))

    if isinstance(expr, Neg):
        operand = compile_expr(expr.operand)
        return lambda ctx: negate(operand(ctx))

    if isinstance(expr, FuncCall):
        try:
            fn = SCALAR_FUNCTIONS[expr.name.lower()]
        except KeyError:
            raise ExpressionError(
                f"unknown function {expr.name!r}") from None
        args = [compile_expr(arg) for arg in expr.args]

        def call(ctx: EvalContext) -> Any:
            try:
                return fn(*[arg(ctx) for arg in args])
            except ExpressionError:
                raise
            except Exception as exc:
                raise ExpressionError(
                    f"error in {expr.name}: {exc}") from exc
        return call

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand)
        pattern = compile_expr(expr.pattern)

        def like(ctx: EvalContext) -> Any:
            value = operand(ctx)
            text = pattern(ctx)
            if value is None or text is None:
                return None
            return _like_regex(text).fullmatch(value) is not None
        return like

    if isinstance(expr, Cast):
        operand = compile_expr(expr.operand)
        type_name = expr.type_name
        return lambda ctx: _cast(operand(ctx), type_name)

    if isinstance(expr, Case):
        whens = [(compile_expr(cond), compile_expr(value))
                 for cond, value in expr.whens]
        default = compile_expr(expr.default)

        def case(ctx: EvalContext) -> Any:
            for condition, value in whens:
                if is_true(condition(ctx)):
                    return value(ctx)
            return default(ctx)
        return case

    if isinstance(expr, Sublink):
        node = expr
        return lambda ctx: _eval_sublink(node, ctx)

    if isinstance(expr, AggCall):
        raise ExpressionError(
            "aggregate call compiled outside an Aggregate operator")

    raise ExpressionError(f"cannot compile expression node {expr!r}")


# ---------------------------------------------------------------------------
# Batch compilation (the pipelined engine's vectorized path)
# ---------------------------------------------------------------------------

#: A row-specialized evaluator: positions resolved at compile time where
#: possible.  The second element reports whether the closure reads the
#: EvalContext (outer frames, parameters, sublinks, name-indexed lookups).
RowCompiled = Callable[[tuple, "EvalContext | None"], Any]

#: Comparison dispatch hoisted to compile time (vs the string-op chain
#: :func:`repro.datatypes.compare` walks per call).
_COMPARE_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Batch evaluators take (rows, outer frames, subquery runner, params).
BatchFilter = Callable[..., list]
BatchProjector = Callable[..., list]
BatchValues = Callable[..., list]


def compile_row(expr: Expr,
                index: dict[str, int]) -> tuple[RowCompiled, bool]:
    """Compile *expr* into a ``(row, ctx) -> value`` closure against the
    name->position *index* of the operator's input schema.

    Level-0 column references become direct positional reads, pure
    constant subtrees (e.g. the ``Neg(Const)`` of a negative literal)
    fold at compile time, and comparison dispatch is hoisted out of the
    per-row path.  Subtrees that need evaluation state (outer references,
    parameters, sublinks, unknown names) fall back to
    :func:`compile_expr` over the mutable frame the batch wrappers
    maintain — semantics stay identical.
    """
    fn, needs_ctx, _ = _compile_row(expr, index)
    return fn, needs_ctx


def _fold(fn: RowCompiled) -> RowCompiled:
    """Evaluate a constant subtree once; on error keep the original
    closure so the exception still surfaces at evaluation time."""
    try:
        value = fn(None, None)
    except Exception:
        return fn
    return lambda row, ctx: value


def _compile_row(expr: Expr, index: dict[str, int]
                 ) -> tuple[RowCompiled, bool, bool]:
    """Returns ``(fn, needs_ctx, is_const)``."""
    if isinstance(expr, Const):
        value = expr.value
        return (lambda row, ctx: value), False, True

    if isinstance(expr, Col) and expr.level == 0 and expr.name in index:
        position = index[expr.name]
        return (lambda row, ctx: row[position]), False, False

    if isinstance(expr, Comparison):
        apply = _COMPARE_OPS[expr.op]
        op = expr.op
        left, left_ctx, left_const = _compile_row(expr.left, index)
        right, right_ctx, right_const = _compile_row(expr.right, index)

        def comparison(row: tuple, ctx: Any) -> Any:
            a = left(row, ctx)
            b = right(row, ctx)
            if a is None or b is None:
                return None
            if not _comparable(a, b):
                raise ExpressionError(
                    f"cannot compare {type(a).__name__} with "
                    f"{type(b).__name__} ({a!r} {op} {b!r})")
            return apply(a, b)
        needs_ctx = left_ctx or right_ctx
        is_const = left_const and right_const
        if is_const:
            return _fold(comparison), needs_ctx, True
        return comparison, needs_ctx, False

    if isinstance(expr, NullSafeEq):
        left, left_ctx, left_const = _compile_row(expr.left, index)
        right, right_ctx, right_const = _compile_row(expr.right, index)
        fn = lambda row, ctx: null_safe_equal(  # noqa: E731
            left(row, ctx), right(row, ctx))
        if left_const and right_const:
            return _fold(fn), left_ctx or right_ctx, True
        return fn, left_ctx or right_ctx, False

    if isinstance(expr, BoolOp):
        compiled = [_compile_row(item, index) for item in expr.items]
        items = [fn for fn, _, _ in compiled]
        needs_ctx = any(flag for _, flag, _ in compiled)
        is_const = all(flag for _, _, flag in compiled)
        if expr.op == "and":
            def conjunction(row: tuple, ctx: Any) -> Any:
                result: Any = True
                for item in items:
                    value = item(row, ctx)
                    if value is False:
                        return False
                    if value is None:
                        result = None
                return result
            combined = conjunction
        else:
            def disjunction(row: tuple, ctx: Any) -> Any:
                result: Any = False
                for item in items:
                    value = item(row, ctx)
                    if value is True:
                        return True
                    if value is None:
                        result = None
                return result
            combined = disjunction
        if is_const:
            return _fold(combined), needs_ctx, True
        return combined, needs_ctx, False

    if isinstance(expr, Not):
        operand, needs_ctx, is_const = _compile_row(expr.operand, index)
        fn = lambda row, ctx: tv_not(operand(row, ctx))  # noqa: E731
        if is_const:
            return _fold(fn), needs_ctx, True
        return fn, needs_ctx, False

    if isinstance(expr, IsNull):
        operand, needs_ctx, is_const = _compile_row(expr.operand, index)
        fn = lambda row, ctx: operand(row, ctx) is None  # noqa: E731
        if is_const:
            return _fold(fn), needs_ctx, True
        return fn, needs_ctx, False

    if isinstance(expr, Arith):
        op = expr.op
        left, left_ctx, left_const = _compile_row(expr.left, index)
        right, right_ctx, right_const = _compile_row(expr.right, index)
        fn = lambda row, ctx: arithmetic(  # noqa: E731
            op, left(row, ctx), right(row, ctx))
        if left_const and right_const:
            return _fold(fn), left_ctx or right_ctx, True
        return fn, left_ctx or right_ctx, False

    if isinstance(expr, Neg):
        operand, needs_ctx, is_const = _compile_row(expr.operand, index)
        fn = lambda row, ctx: negate(operand(row, ctx))  # noqa: E731
        if is_const:
            return _fold(fn), needs_ctx, True
        return fn, needs_ctx, False

    # Everything stateful or rare (sublinks, outer/unknown columns,
    # parameters, CASE, LIKE, casts, function calls) goes through the
    # reference compiler against the mutable batch frame.
    scalar = compile_expr(expr)
    return (lambda row, ctx: scalar(ctx)), True, False


def _batch_state(index: dict[str, int]):
    """A reusable (frame, context-factory) pair for one batch call."""
    from .evaluator import EvalContext, Frame

    def make(frames, runner, params):
        frame = Frame(index, None)
        return frame, EvalContext((*frames, frame), runner, params)
    return make


def compile_batch_predicate(expr: Expr, index: dict[str, int],
                            use_compiler: bool = True) -> BatchFilter:
    """A ``(rows, frames, runner, params) -> surviving rows`` filter.

    WHERE semantics: a row survives iff the predicate is definitely true.
    With ``use_compiler=False`` the tree-walking evaluator runs per row
    (the ablation configuration).
    """
    make_state = _batch_state(index)
    if not use_compiler:
        def interpret(rows, frames, runner, params):
            from .evaluator import evaluate
            frame, ctx = make_state(frames, runner, params)
            out = []
            for row in rows:
                frame.row = row
                if is_true(evaluate(expr, ctx)):
                    out.append(row)
            return out
        return interpret

    fn, needs_ctx = compile_row(expr, index)
    if not needs_ctx:
        def run_free(rows, frames, runner, params):
            return [row for row in rows if is_true(fn(row, None))]
        return run_free

    def run(rows, frames, runner, params):
        frame, ctx = make_state(frames, runner, params)
        out = []
        for row in rows:
            frame.row = row
            if is_true(fn(row, ctx)):
                out.append(row)
        return out
    return run


def compile_batch_projector(exprs: Sequence[Expr], index: dict[str, int],
                            use_compiler: bool = True) -> BatchProjector:
    """A ``(rows, frames, runner, params) -> list of output tuples``
    projector evaluating all items of a projection in one pass.

    All-column projections (the pure renames and column shuffles the
    provenance rewrites emit in bulk) compile to a positional
    ``itemgetter`` — and an identity projection passes batches through
    untouched.
    """
    if use_compiler and exprs and all(
            isinstance(e, Col) and e.level == 0 and e.name in index
            for e in exprs):
        positions = tuple(index[e.name] for e in exprs)
        if positions == tuple(range(len(index))):
            return lambda rows, frames, runner, params: rows
        if len(positions) == 1:
            position = positions[0]
            return lambda rows, frames, runner, params: [
                (row[position],) for row in rows]
        from operator import itemgetter
        getter = itemgetter(*positions)
        return lambda rows, frames, runner, params: \
            [getter(row) for row in rows]

    make_state = _batch_state(index)
    if not use_compiler:
        def interpret(rows, frames, runner, params):
            from .evaluator import evaluate
            frame, ctx = make_state(frames, runner, params)
            out = []
            for row in rows:
                frame.row = row
                out.append(tuple(evaluate(e, ctx) for e in exprs))
            return out
        return interpret

    compiled = [compile_row(expr, index) for expr in exprs]
    fns = [fn for fn, _ in compiled]
    if not any(flag for _, flag in compiled):
        def run_free(rows, frames, runner, params):
            return [tuple(fn(row, None) for fn in fns) for row in rows]
        return run_free

    def run(rows, frames, runner, params):
        frame, ctx = make_state(frames, runner, params)
        out = []
        for row in rows:
            frame.row = row
            out.append(tuple(fn(row, ctx) for fn in fns))
        return out
    return run


def compile_batch_values(expr: Expr, index: dict[str, int],
                         use_compiler: bool = True) -> BatchValues:
    """A ``(rows, frames, runner, params) -> list of values`` evaluator
    (one value per input row) for aggregate arguments and similar."""
    make_state = _batch_state(index)
    if not use_compiler:
        def interpret(rows, frames, runner, params):
            from .evaluator import evaluate
            frame, ctx = make_state(frames, runner, params)
            out = []
            for row in rows:
                frame.row = row
                out.append(evaluate(expr, ctx))
            return out
        return interpret

    fn, needs_ctx = compile_row(expr, index)
    if not needs_ctx:
        def run_free(rows, frames, runner, params):
            return [fn(row, None) for row in rows]
        return run_free

    def run(rows, frames, runner, params):
        frame, ctx = make_state(frames, runner, params)
        out = []
        for row in rows:
            frame.row = row
            out.append(fn(row, ctx))
        return out
    return run
