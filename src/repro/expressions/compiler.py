"""Expression compiler: AST -> Python closures.

The tree-walking evaluator re-dispatches on node types for every row; the
compiler performs that dispatch once, producing a closure over an
:class:`~repro.expressions.evaluator.EvalContext`.  Column positions are
*not* baked in (frames carry their own name index), so one compiled
expression works under any schema that provides the referenced names —
which is exactly what the provenance rewrites rely on.

This is the engine's counterpart of PostgreSQL's expression JIT; the
ablation benchmark (``benchmarks/bench_ablation.py``) measures its
effect.  Semantics are identical to :func:`repro.expressions.evaluator.
evaluate` — the property test in ``tests/test_compiler.py`` checks them
against each other on random expressions.

Two compilation surfaces:

* :func:`compile_expr` — per-row closure over an :class:`EvalContext`
  (the materializing engine's path).
* the **batch compilers** (:func:`compile_batch_predicate`,
  :func:`compile_batch_projector`, :func:`compile_batch_values`) — used by
  the pipelined engine: one call evaluates a whole row batch.  When the
  expression is *context-free* (level-0 columns, constants, parameters-
  free scalar structure), column positions are resolved against the
  operator's input schema once at compile time and no
  :class:`EvalContext`/:class:`Frame` objects are allocated at all;
  otherwise a single mutable frame is reused across the batch instead of
  allocating one per row.
* the **vector compilers** (:func:`compile_vector_predicate`,
  :func:`compile_vector_values`) — used by the vectorized engine over
  :class:`~repro.engine.columnar.ColumnBatch` columns: a predicate
  compiles to whole-column kernels refining a selection vector, a scalar
  expression to a kernel producing one value vector.  Both return None
  for anything they cannot compile with *identical* semantics (sublinks,
  outer columns, LIKE/CASE/casts/functions, OR) — the engine then keeps
  that operator on the row path, so ``engine="vectorized"`` is always
  correct, never partial.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..datatypes import (
    NEGATED_COMPARISON, _comparable, arithmetic, compare, is_true, negate,
    null_safe_equal, tv_not,
)
from ..errors import ExpressionError
from .ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, Expr,
    FuncCall, IsNull, Like, Neg, Not, NullSafeEq, Param, Sublink,
)
from .evaluator import EvalContext, _cast, _eval_sublink, _like_regex
from .functions import SCALAR_FUNCTIONS

Compiled = Callable[[EvalContext], Any]


def compile_expr(expr: Expr) -> Compiled:
    """Compile *expr* into a closure over an :class:`EvalContext`."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda ctx: value

    if isinstance(expr, Param):
        index = expr.index
        return lambda ctx: ctx.param(index)

    if isinstance(expr, Col):
        name = expr.name
        level = expr.level
        if level == 0:
            def read_current(ctx: EvalContext) -> Any:
                frame = ctx.frames[-1]
                return frame.row[frame.index[name]]
            return read_current

        def read_outer(ctx: EvalContext) -> Any:
            return ctx.lookup(name, level)
        return read_outer

    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: compare(op, left(ctx), right(ctx))

    if isinstance(expr, NullSafeEq):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: null_safe_equal(left(ctx), right(ctx))

    if isinstance(expr, BoolOp):
        items = [compile_expr(item) for item in expr.items]
        if expr.op == "and":
            def conjunction(ctx: EvalContext) -> Any:
                result: Any = True
                for item in items:
                    value = item(ctx)
                    if value is False:
                        return False
                    if value is None:
                        result = None
                return result
            return conjunction

        def disjunction(ctx: EvalContext) -> Any:
            result: Any = False
            for item in items:
                value = item(ctx)
                if value is True:
                    return True
                if value is None:
                    result = None
            return result
        return disjunction

    if isinstance(expr, Not):
        operand = compile_expr(expr.operand)
        return lambda ctx: tv_not(operand(ctx))

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand)
        return lambda ctx: operand(ctx) is None

    if isinstance(expr, Arith):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        return lambda ctx: arithmetic(op, left(ctx), right(ctx))

    if isinstance(expr, Neg):
        operand = compile_expr(expr.operand)
        return lambda ctx: negate(operand(ctx))

    if isinstance(expr, FuncCall):
        try:
            fn = SCALAR_FUNCTIONS[expr.name.lower()]
        except KeyError:
            raise ExpressionError(
                f"unknown function {expr.name!r}") from None
        args = [compile_expr(arg) for arg in expr.args]

        def call(ctx: EvalContext) -> Any:
            try:
                return fn(*[arg(ctx) for arg in args])
            except ExpressionError:
                raise
            except Exception as exc:
                raise ExpressionError(
                    f"error in {expr.name}: {exc}") from exc
        return call

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand)
        pattern = compile_expr(expr.pattern)

        def like(ctx: EvalContext) -> Any:
            value = operand(ctx)
            text = pattern(ctx)
            if value is None or text is None:
                return None
            return _like_regex(text).fullmatch(value) is not None
        return like

    if isinstance(expr, Cast):
        operand = compile_expr(expr.operand)
        type_name = expr.type_name
        return lambda ctx: _cast(operand(ctx), type_name)

    if isinstance(expr, Case):
        whens = [(compile_expr(cond), compile_expr(value))
                 for cond, value in expr.whens]
        default = compile_expr(expr.default)

        def case(ctx: EvalContext) -> Any:
            for condition, value in whens:
                if is_true(condition(ctx)):
                    return value(ctx)
            return default(ctx)
        return case

    if isinstance(expr, Sublink):
        node = expr
        return lambda ctx: _eval_sublink(node, ctx)

    if isinstance(expr, AggCall):
        raise ExpressionError(
            "aggregate call compiled outside an Aggregate operator")

    raise ExpressionError(f"cannot compile expression node {expr!r}")


# ---------------------------------------------------------------------------
# Batch compilation (the pipelined engine's vectorized path)
# ---------------------------------------------------------------------------

#: A row-specialized evaluator: positions resolved at compile time where
#: possible.  The second element reports whether the closure reads the
#: EvalContext (outer frames, parameters, sublinks, name-indexed lookups).
RowCompiled = Callable[[tuple, "EvalContext | None"], Any]

#: Comparison dispatch hoisted to compile time (vs the string-op chain
#: :func:`repro.datatypes.compare` walks per call).
_COMPARE_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Batch evaluators take (rows, outer frames, subquery runner, params).
BatchFilter = Callable[..., list]
BatchProjector = Callable[..., list]
BatchValues = Callable[..., list]


def compile_row(expr: Expr,
                index: dict[str, int]) -> tuple[RowCompiled, bool]:
    """Compile *expr* into a ``(row, ctx) -> value`` closure against the
    name->position *index* of the operator's input schema.

    Level-0 column references become direct positional reads, pure
    constant subtrees (e.g. the ``Neg(Const)`` of a negative literal)
    fold at compile time, and comparison dispatch is hoisted out of the
    per-row path.  Subtrees that need evaluation state (outer references,
    parameters, sublinks, unknown names) fall back to
    :func:`compile_expr` over the mutable frame the batch wrappers
    maintain — semantics stay identical.
    """
    fn, needs_ctx, _ = _compile_row(expr, index)
    return fn, needs_ctx


def _fold(fn: RowCompiled) -> RowCompiled:
    """Evaluate a constant subtree once; on error keep the original
    closure so the exception still surfaces at evaluation time."""
    try:
        value = fn(None, None)
    except Exception:
        return fn
    return lambda row, ctx: value


def _compile_row(expr: Expr, index: dict[str, int]
                 ) -> tuple[RowCompiled, bool, bool]:
    """Returns ``(fn, needs_ctx, is_const)``."""
    if isinstance(expr, Const):
        value = expr.value
        return (lambda row, ctx: value), False, True

    if isinstance(expr, Col) and expr.level == 0 and expr.name in index:
        position = index[expr.name]
        return (lambda row, ctx: row[position]), False, False

    if isinstance(expr, Comparison):
        apply = _COMPARE_OPS[expr.op]
        op = expr.op
        left, left_ctx, left_const = _compile_row(expr.left, index)
        right, right_ctx, right_const = _compile_row(expr.right, index)

        def comparison(row: tuple, ctx: Any) -> Any:
            a = left(row, ctx)
            b = right(row, ctx)
            if a is None or b is None:
                return None
            if not _comparable(a, b):
                raise ExpressionError(
                    f"cannot compare {type(a).__name__} with "
                    f"{type(b).__name__} ({a!r} {op} {b!r})")
            return apply(a, b)
        needs_ctx = left_ctx or right_ctx
        is_const = left_const and right_const
        if is_const:
            return _fold(comparison), needs_ctx, True
        return comparison, needs_ctx, False

    if isinstance(expr, NullSafeEq):
        left, left_ctx, left_const = _compile_row(expr.left, index)
        right, right_ctx, right_const = _compile_row(expr.right, index)
        fn = lambda row, ctx: null_safe_equal(  # noqa: E731
            left(row, ctx), right(row, ctx))
        if left_const and right_const:
            return _fold(fn), left_ctx or right_ctx, True
        return fn, left_ctx or right_ctx, False

    if isinstance(expr, BoolOp):
        compiled = [_compile_row(item, index) for item in expr.items]
        items = [fn for fn, _, _ in compiled]
        needs_ctx = any(flag for _, flag, _ in compiled)
        is_const = all(flag for _, _, flag in compiled)
        if expr.op == "and":
            def conjunction(row: tuple, ctx: Any) -> Any:
                result: Any = True
                for item in items:
                    value = item(row, ctx)
                    if value is False:
                        return False
                    if value is None:
                        result = None
                return result
            combined = conjunction
        else:
            def disjunction(row: tuple, ctx: Any) -> Any:
                result: Any = False
                for item in items:
                    value = item(row, ctx)
                    if value is True:
                        return True
                    if value is None:
                        result = None
                return result
            combined = disjunction
        if is_const:
            return _fold(combined), needs_ctx, True
        return combined, needs_ctx, False

    if isinstance(expr, Not):
        operand, needs_ctx, is_const = _compile_row(expr.operand, index)
        fn = lambda row, ctx: tv_not(operand(row, ctx))  # noqa: E731
        if is_const:
            return _fold(fn), needs_ctx, True
        return fn, needs_ctx, False

    if isinstance(expr, IsNull):
        operand, needs_ctx, is_const = _compile_row(expr.operand, index)
        fn = lambda row, ctx: operand(row, ctx) is None  # noqa: E731
        if is_const:
            return _fold(fn), needs_ctx, True
        return fn, needs_ctx, False

    if isinstance(expr, Arith):
        op = expr.op
        left, left_ctx, left_const = _compile_row(expr.left, index)
        right, right_ctx, right_const = _compile_row(expr.right, index)
        fn = lambda row, ctx: arithmetic(  # noqa: E731
            op, left(row, ctx), right(row, ctx))
        if left_const and right_const:
            return _fold(fn), left_ctx or right_ctx, True
        return fn, left_ctx or right_ctx, False

    if isinstance(expr, Neg):
        operand, needs_ctx, is_const = _compile_row(expr.operand, index)
        fn = lambda row, ctx: negate(operand(row, ctx))  # noqa: E731
        if is_const:
            return _fold(fn), needs_ctx, True
        return fn, needs_ctx, False

    # Everything stateful or rare (sublinks, outer/unknown columns,
    # parameters, CASE, LIKE, casts, function calls) goes through the
    # reference compiler against the mutable batch frame.
    scalar = compile_expr(expr)
    return (lambda row, ctx: scalar(ctx)), True, False


def _batch_state(index: dict[str, int]):
    """A reusable (frame, context-factory) pair for one batch call."""
    from .evaluator import EvalContext, Frame

    def make(frames, runner, params):
        frame = Frame(index, None)
        return frame, EvalContext((*frames, frame), runner, params)
    return make


def compile_batch_predicate(expr: Expr, index: dict[str, int],
                            use_compiler: bool = True) -> BatchFilter:
    """A ``(rows, frames, runner, params) -> surviving rows`` filter.

    WHERE semantics: a row survives iff the predicate is definitely true.
    With ``use_compiler=False`` the tree-walking evaluator runs per row
    (the ablation configuration).
    """
    make_state = _batch_state(index)
    if not use_compiler:
        def interpret(rows, frames, runner, params):
            from .evaluator import evaluate
            frame, ctx = make_state(frames, runner, params)
            out = []
            for row in rows:
                frame.row = row
                if is_true(evaluate(expr, ctx)):
                    out.append(row)
            return out
        return interpret

    fn, needs_ctx = compile_row(expr, index)
    if not needs_ctx:
        def run_free(rows, frames, runner, params):
            return [row for row in rows if is_true(fn(row, None))]
        return run_free

    def run(rows, frames, runner, params):
        frame, ctx = make_state(frames, runner, params)
        out = []
        for row in rows:
            frame.row = row
            if is_true(fn(row, ctx)):
                out.append(row)
        return out
    return run


def compile_batch_projector(exprs: Sequence[Expr], index: dict[str, int],
                            use_compiler: bool = True) -> BatchProjector:
    """A ``(rows, frames, runner, params) -> list of output tuples``
    projector evaluating all items of a projection in one pass.

    All-column projections (the pure renames and column shuffles the
    provenance rewrites emit in bulk) compile to a positional
    ``itemgetter`` — and an identity projection passes batches through
    untouched.
    """
    if use_compiler and exprs and all(
            isinstance(e, Col) and e.level == 0 and e.name in index
            for e in exprs):
        positions = tuple(index[e.name] for e in exprs)
        if positions == tuple(range(len(index))):
            return lambda rows, frames, runner, params: rows
        if len(positions) == 1:
            position = positions[0]
            return lambda rows, frames, runner, params: [
                (row[position],) for row in rows]
        from operator import itemgetter
        getter = itemgetter(*positions)
        return lambda rows, frames, runner, params: \
            [getter(row) for row in rows]

    make_state = _batch_state(index)
    if not use_compiler:
        def interpret(rows, frames, runner, params):
            from .evaluator import evaluate
            frame, ctx = make_state(frames, runner, params)
            out = []
            for row in rows:
                frame.row = row
                out.append(tuple(evaluate(e, ctx) for e in exprs))
            return out
        return interpret

    compiled = [compile_row(expr, index) for expr in exprs]
    fns = [fn for fn, _ in compiled]
    if not any(flag for _, flag in compiled):
        def run_free(rows, frames, runner, params):
            return [tuple(fn(row, None) for fn in fns) for row in rows]
        return run_free

    def run(rows, frames, runner, params):
        frame, ctx = make_state(frames, runner, params)
        out = []
        for row in rows:
            frame.row = row
            out.append(tuple(fn(row, ctx) for fn in fns))
        return out
    return run


def compile_batch_values(expr: Expr, index: dict[str, int],
                         use_compiler: bool = True) -> BatchValues:
    """A ``(rows, frames, runner, params) -> list of values`` evaluator
    (one value per input row) for aggregate arguments and similar."""
    make_state = _batch_state(index)
    if not use_compiler:
        def interpret(rows, frames, runner, params):
            from .evaluator import evaluate
            frame, ctx = make_state(frames, runner, params)
            out = []
            for row in rows:
                frame.row = row
                out.append(evaluate(expr, ctx))
            return out
        return interpret

    fn, needs_ctx = compile_row(expr, index)
    if not needs_ctx:
        def run_free(rows, frames, runner, params):
            return [fn(row, None) for row in rows]
        return run_free

    def run(rows, frames, runner, params):
        frame, ctx = make_state(frames, runner, params)
        out = []
        for row in rows:
            frame.row = row
            out.append(fn(row, ctx))
        return out
    return run


# ---------------------------------------------------------------------------
# Vector compilation (the vectorized engine's columnar path)
# ---------------------------------------------------------------------------
#
# Vector kernels run over the column vectors of a
# :class:`~repro.engine.columnar.ColumnBatch`:
#
# * a *predicate kernel* has signature ``(columns, sel, params) ->
#   selection`` — it refines the batch's selection vector, one whole-column
#   pass per conjunct, without touching row tuples;
# * a *value kernel* has signature ``(columns, idxs, params) -> values`` —
#   one output value per selected index (projections, aggregate
#   arguments, hash keys, computed comparison operands).
#
# Semantics replicate the row compiler exactly, including SQL's
# three-valued AND: the row conjunction short-circuits on a definite
# False but keeps evaluating after an unknown, so the kernel keeps
# NULL-valued rows in the candidate list (recording them in a ``nulls``
# set) and only removes them after the last conjunct — a later conjunct
# still sees them, and still raises the same errors on them.  Fast paths
# (bare comprehensions over ``operator``-module functions) fire only when
# the column kind *guarantees* comparability and non-nullness; every
# other shape goes through :func:`repro.datatypes.compare` /
# :func:`~repro.datatypes.arithmetic`, so error messages are identical
# to the row engine's.  The one documented divergence: when several rows
# of one batch would raise, the vector engine surfaces the first error in
# column-major (conjunct-by-conjunct) order rather than row-major order —
# still an :class:`~repro.errors.ExpressionError`, possibly for a
# different offending row.
#
# Anything not supported compiles to ``None`` and the operator stays on
# the row path (correct, never partial): sublinks, outer (level > 0) or
# unknown columns, OR, LIKE, CASE, casts, function calls.

#: Arithmetic fast-path dispatch for operators that cannot raise on
#: non-null numbers (``/`` and ``%`` have zero checks; ``||`` casts).
import operator as _operator

_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _operator.add, "-": _operator.sub, "*": _operator.mul,
}

#: A predicate kernel: ``(columns, sel, params) -> list of indices``.
VectorPredicate = Callable[..., list]
#: A value kernel: ``(columns, idxs, params) -> list of values``.
VectorValues = Callable[..., list]


def compile_vector_values(expr: Expr,
                          index: dict[str, int]) -> VectorValues | None:
    """Compile *expr* into a value kernel, or None when unsupported."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda columns, idxs, params: [value] * len(idxs)

    if isinstance(expr, Param):
        position = expr.index
        return lambda columns, idxs, params: [params[position]] * len(idxs)

    if isinstance(expr, Col) and expr.level == 0 and expr.name in index:
        position = index[expr.name]

        def read(columns, idxs, params):
            values = columns[position].values
            return [values[i] for i in idxs]
        return read

    if isinstance(expr, Arith):
        op = expr.op
        if op in _ARITH_OPS \
                and isinstance(expr.left, Col) and expr.left.level == 0 \
                and expr.left.name in index \
                and isinstance(expr.right, Col) and expr.right.level == 0 \
                and expr.right.name in index:
            left_pos = index[expr.left.name]
            right_pos = index[expr.right.name]
            fast = _ARITH_OPS[op]

            def arith_columns(columns, idxs, params):
                left_col = columns[left_pos]
                right_col = columns[right_pos]
                left_values = left_col.values
                right_values = right_col.values
                if left_col.kind == "num" and right_col.kind == "num" \
                        and not left_col.has_nulls \
                        and not right_col.has_nulls:
                    return [fast(left_values[i], right_values[i])
                            for i in idxs]
                return [arithmetic(op, left_values[i], right_values[i])
                        for i in idxs]
            return arith_columns
        left = compile_vector_values(expr.left, index)
        right = compile_vector_values(expr.right, index)
        if left is None or right is None:
            return None

        def arith_values(columns, idxs, params):
            return [arithmetic(op, a, b)
                    for a, b in zip(left(columns, idxs, params),
                                    right(columns, idxs, params))]
        return arith_values

    if isinstance(expr, Neg):
        operand = compile_vector_values(expr.operand, index)
        if operand is None:
            return None
        return lambda columns, idxs, params: [
            negate(v) for v in operand(columns, idxs, params)]

    if isinstance(expr, Comparison):
        op = expr.op
        left = compile_vector_values(expr.left, index)
        right = compile_vector_values(expr.right, index)
        if left is None or right is None:
            return None
        return lambda columns, idxs, params: [
            compare(op, a, b)
            for a, b in zip(left(columns, idxs, params),
                            right(columns, idxs, params))]

    if isinstance(expr, NullSafeEq):
        left = compile_vector_values(expr.left, index)
        right = compile_vector_values(expr.right, index)
        if left is None or right is None:
            return None
        return lambda columns, idxs, params: [
            null_safe_equal(a, b)
            for a, b in zip(left(columns, idxs, params),
                            right(columns, idxs, params))]

    if isinstance(expr, Not):
        operand = compile_vector_values(expr.operand, index)
        if operand is None:
            return None
        return lambda columns, idxs, params: [
            tv_not(v) for v in operand(columns, idxs, params)]

    if isinstance(expr, IsNull):
        operand = compile_vector_values(expr.operand, index)
        if operand is None:
            return None
        return lambda columns, idxs, params: [
            v is None for v in operand(columns, idxs, params)]

    # Unsupported: Sublink, BoolOp (short-circuit error semantics don't
    # survive eager per-item vector evaluation), Like, Case, Cast,
    # FuncCall, outer/unknown columns, aggregates.
    return None


def _fast_scalar(kind: str, value: Any) -> bool:
    """True when *kind* guarantees every column value is directly
    comparable with *value* by Python operators (no 3VL, no errors)."""
    if kind == "num":
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool)
    if kind == "text":
        return isinstance(value, str)
    if kind == "bool":
        return isinstance(value, bool)
    return False


def _operand(expr: Expr, index: dict[str, int]):
    """Classify a comparison operand: column, scalar, or value kernel."""
    if isinstance(expr, Const):
        return ("const", expr.value)
    if isinstance(expr, Neg) and isinstance(expr.operand, Const):
        # negative literals parse as Neg(Const); fold numeric ones so
        # ``b >= -5`` still takes the column-vs-scalar fast path
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return ("const", -value)
    if isinstance(expr, Param):
        return ("param", expr.index)
    if isinstance(expr, Col) and expr.level == 0 and expr.name in index:
        return ("col", index[expr.name])
    kernel = compile_vector_values(expr, index)
    if kernel is None:
        return None
    return ("kernel", kernel)


def _fetcher(tag: str, payload) -> VectorValues:
    """A value kernel for one classified operand."""
    if tag == "col":
        position = payload

        def read(columns, idxs, params):
            values = columns[position].values
            return [values[i] for i in idxs]
        return read
    if tag == "const":
        return lambda columns, idxs, params: [payload] * len(idxs)
    if tag == "param":
        return lambda columns, idxs, params: [params[payload]] * len(idxs)
    return payload


def _col_scalar_step(position: int, op: str, resolve, reverse: bool):
    """Comparison step for column-vs-scalar (or scalar-vs-column when
    *reverse*); the hot shape of every filter in the bench workloads."""
    apply = _COMPARE_OPS[op]

    def step(columns, cand, nulls, params):
        value = resolve(params)
        column = columns[position]
        values = column.values
        if value is None:
            # NULL comparand: unknown for every candidate row
            nulls.update(cand)
            return cand if isinstance(cand, list) else list(cand)
        if _fast_scalar(column.kind, value):
            if not column.has_nulls:
                if reverse:
                    return [i for i in cand if apply(value, values[i])]
                return [i for i in cand if apply(values[i], value)]
            out = []
            if reverse:
                for i in cand:
                    v = values[i]
                    if v is None:
                        nulls.add(i)
                        out.append(i)
                    elif apply(value, v):
                        out.append(i)
            else:
                for i in cand:
                    v = values[i]
                    if v is None:
                        nulls.add(i)
                        out.append(i)
                    elif apply(v, value):
                        out.append(i)
            return out
        out = []
        if reverse:
            for i in cand:
                result = compare(op, value, values[i])
                if result is True:
                    out.append(i)
                elif result is None:
                    nulls.add(i)
                    out.append(i)
        else:
            for i in cand:
                result = compare(op, values[i], value)
                if result is True:
                    out.append(i)
                elif result is None:
                    nulls.add(i)
                    out.append(i)
        return out
    return step


def _col_col_step(left_pos: int, right_pos: int, op: str):
    """Comparison step for column-vs-column (join residuals, ``a < b``)."""
    apply = _COMPARE_OPS[op]

    def step(columns, cand, nulls, params):
        left_col = columns[left_pos]
        right_col = columns[right_pos]
        left_values = left_col.values
        right_values = right_col.values
        if left_col.kind == right_col.kind \
                and left_col.kind in ("num", "text", "bool"):
            if not left_col.has_nulls and not right_col.has_nulls:
                return [i for i in cand
                        if apply(left_values[i], right_values[i])]
            out = []
            for i in cand:
                a = left_values[i]
                b = right_values[i]
                if a is None or b is None:
                    nulls.add(i)
                    out.append(i)
                elif apply(a, b):
                    out.append(i)
            return out
        out = []
        for i in cand:
            result = compare(op, left_values[i], right_values[i])
            if result is True:
                out.append(i)
            elif result is None:
                nulls.add(i)
                out.append(i)
        return out
    return step


def _general_comparison_step(op: str, left_fetch: VectorValues,
                             right_fetch: VectorValues):
    """Comparison step with at least one computed operand."""
    def step(columns, cand, nulls, params):
        idxs = cand if isinstance(cand, list) else list(cand)
        left_values = left_fetch(columns, idxs, params)
        right_values = right_fetch(columns, idxs, params)
        out = []
        for i, a, b in zip(idxs, left_values, right_values):
            result = compare(op, a, b)
            if result is True:
                out.append(i)
            elif result is None:
                nulls.add(i)
                out.append(i)
        return out
    return step


def _comparison_step(op: str, left: Expr, right: Expr,
                     index: dict[str, int]):
    left_operand = _operand(left, index)
    right_operand = _operand(right, index)
    if left_operand is None or right_operand is None:
        return None
    left_tag, left_payload = left_operand
    right_tag, right_payload = right_operand
    if left_tag == "col" and right_tag == "col":
        return _col_col_step(left_payload, right_payload, op)
    if left_tag == "col" and right_tag in ("const", "param"):
        resolve = (lambda params, v=right_payload: v) \
            if right_tag == "const" \
            else (lambda params, p=right_payload: params[p])
        return _col_scalar_step(left_payload, op, resolve, reverse=False)
    if right_tag == "col" and left_tag in ("const", "param"):
        resolve = (lambda params, v=left_payload: v) \
            if left_tag == "const" \
            else (lambda params, p=left_payload: params[p])
        return _col_scalar_step(right_payload, op, resolve, reverse=True)
    return _general_comparison_step(op, _fetcher(left_tag, left_payload),
                                    _fetcher(right_tag, right_payload))


def _is_null_step(operand: Expr, index: dict[str, int], want_null: bool):
    """``IS NULL`` / ``IS NOT NULL``: always two-valued, never unknown."""
    if isinstance(operand, Col) and operand.level == 0 \
            and operand.name in index:
        position = index[operand.name]
        if want_null:
            def step(columns, cand, nulls, params):
                values = columns[position].values
                return [i for i in cand if values[i] is None]
        else:
            def step(columns, cand, nulls, params):
                values = columns[position].values
                return [i for i in cand if values[i] is not None]
        return step
    kernel = compile_vector_values(operand, index)
    if kernel is None:
        return None
    if want_null:
        def step(columns, cand, nulls, params):
            idxs = cand if isinstance(cand, list) else list(cand)
            values = kernel(columns, idxs, params)
            return [i for i, v in zip(idxs, values) if v is None]
    else:
        def step(columns, cand, nulls, params):
            idxs = cand if isinstance(cand, list) else list(cand)
            values = kernel(columns, idxs, params)
            return [i for i, v in zip(idxs, values) if v is not None]
    return step


def _value_step(expr: Expr, index: dict[str, int], strict: bool):
    """A conjunct evaluated as a plain truth value.

    Inside a conjunction (*strict* False) the row compiler treats any
    value that is neither False nor None as contributing true; as the
    whole predicate (*strict* True), WHERE semantics keep only a definite
    True.  Both are replicated exactly.
    """
    kernel = compile_vector_values(expr, index)
    if kernel is None:
        return None
    if strict:
        def step(columns, cand, nulls, params):
            idxs = cand if isinstance(cand, list) else list(cand)
            values = kernel(columns, idxs, params)
            return [i for i, v in zip(idxs, values) if v is True]
        return step

    def step(columns, cand, nulls, params):
        idxs = cand if isinstance(cand, list) else list(cand)
        values = kernel(columns, idxs, params)
        out = []
        for i, v in zip(idxs, values):
            if v is False:
                continue
            if v is None:
                nulls.add(i)
            out.append(i)
        return out
    return step


def _compile_step(expr: Expr, index: dict[str, int], strict: bool):
    """One conjunct -> one selection-refining step, or None."""
    if isinstance(expr, Not) and isinstance(expr.operand, Comparison):
        # NOT (a < b) == a >= b under 3VL: both are unknown on NULL, and
        # compare() raises identically for incomparable operands.
        inner = expr.operand
        return _comparison_step(NEGATED_COMPARISON[inner.op], inner.left,
                                inner.right, index)
    if isinstance(expr, Comparison):
        return _comparison_step(expr.op, expr.left, expr.right, index)
    if isinstance(expr, IsNull):
        return _is_null_step(expr.operand, index, want_null=True)
    if isinstance(expr, Not) and isinstance(expr.operand, IsNull):
        return _is_null_step(expr.operand.operand, index, want_null=False)
    if isinstance(expr, NullSafeEq):
        left_operand = _operand(expr.left, index)
        right_operand = _operand(expr.right, index)
        if left_operand is None or right_operand is None:
            return None
        left_fetch = _fetcher(*left_operand)
        right_fetch = _fetcher(*right_operand)

        def step(columns, cand, nulls, params):
            idxs = cand if isinstance(cand, list) else list(cand)
            left_values = left_fetch(columns, idxs, params)
            right_values = right_fetch(columns, idxs, params)
            return [i for i, a, b in zip(idxs, left_values, right_values)
                    if null_safe_equal(a, b)]
        return step
    return _value_step(expr, index, strict)


def _flatten_and(expr: Expr) -> list[Expr]:
    if isinstance(expr, BoolOp) and expr.op == "and":
        items: list[Expr] = []
        for item in expr.items:
            items.extend(_flatten_and(item))
        return items
    return [expr]


def compile_vector_predicate(expr: Expr, index: dict[str, int]
                             ) -> VectorPredicate | None:
    """Compile a WHERE/residual predicate into a selection-vector kernel
    ``(columns, sel, params) -> list of surviving indices``, or None when
    any conjunct is unsupported (the operator then stays on rows)."""
    strict = not (isinstance(expr, BoolOp) and expr.op == "and")
    conjuncts = _flatten_and(expr)
    steps = []
    for conjunct in conjuncts:
        step = _compile_step(conjunct, index, strict)
        if step is None:
            return None
        steps.append(step)

    if len(steps) == 1:
        only = steps[0]

        def single(columns, sel, params):
            nulls: set = set()
            cand = only(columns, sel, nulls, params)
            if nulls:
                cand = [i for i in cand if i not in nulls]
            return cand
        return single

    def kernel(columns, sel, params):
        nulls: set = set()
        cand = sel
        for step in steps:
            cand = step(columns, cand, nulls, params)
            if not cand:
                return cand if isinstance(cand, list) else list(cand)
        if nulls:
            cand = [i for i in cand if i not in nulls]
        return cand
    return kernel
