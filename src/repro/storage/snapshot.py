"""Binary database snapshots: one file holding the whole catalog.

A snapshot is the checkpointed image of a database — tables (schema +
rows), view definitions, secondary-index definitions and ANALYZE
statistics — plus the LSN of the last write-ahead-log record it
incorporates, so recovery replays exactly the WAL suffix the snapshot
does not already contain.

Layout: an 8-byte magic, then CRC32-framed records
(:func:`repro.storage.codec.write_record`), each starting with a kind
byte::

    H  header: format version, last incorporated WAL LSN
    T  one table: name, schema, row block
    P  one hash-partitioning declaration: table, column, count
    V  one view: name, pickled parsed SELECT
    I  one index definition: name, table, column, kind, unique
    S  one table's statistics
    E  end marker (a snapshot without it is truncated -> StorageError)

Index *structures* are deliberately not serialized: an index record
stores only the definition, and :func:`load_snapshot` rebuilds the
hash / sorted structure from the loaded rows — simpler, versioning-proof
and about as fast as decoding the structure would be.

Writes are atomic: the image goes to a temp file which is fsynced and
``os.replace``d over the live name, then the directory entry is fsynced.
A crash mid-checkpoint leaves the previous snapshot intact.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..catalog import Catalog
from ..engine.columnar import seed_columns
from ..errors import StorageError
from ..relation import Relation
from .codec import (
    decode_columnar_columns, decode_schema, decode_str,
    decode_table_stats, decode_varint, dumps_ast, encode_columnar_rows,
    encode_schema, encode_str, encode_table_stats, encode_varint,
    loads_ast, read_record, write_record,
)

MAGIC = b"RPRODB01"
FORMAT_VERSION = 1

_KIND_HEADER = ord("H")
_KIND_TABLE = ord("T")
_KIND_PARTITION = ord("P")
_KIND_VIEW = ord("V")
_KIND_INDEX = ord("I")
_KIND_STATS = ord("S")
_KIND_END = ord("E")


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:          # pragma: no cover - non-POSIX platforms
        return               # directory fds aren't a thing there
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(path: str | Path, catalog: Catalog,
                   last_lsn: int = 0) -> None:
    """Write the full image of *catalog* to *path*, atomically.

    *last_lsn* records the WAL position this image incorporates;
    recovery replays only records with a higher LSN.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)

        header = bytearray([_KIND_HEADER])
        encode_varint(header, FORMAT_VERSION)
        encode_varint(header, last_lsn)
        write_record(fh, bytes(header))

        for name in catalog.names():
            relation = catalog.get(name)
            record = bytearray([_KIND_TABLE])
            encode_str(record, name)
            encode_schema(record, relation.schema)
            encode_columnar_rows(record, len(relation.schema),
                                 relation.rows)
            write_record(fh, bytes(record))

        for name, (column, count) in sorted(catalog.partitions().items()):
            record = bytearray([_KIND_PARTITION])
            encode_str(record, name)
            encode_str(record, column)
            encode_varint(record, count)
            write_record(fh, bytes(record))

        for name in catalog.view_names():
            record = bytearray([_KIND_VIEW])
            encode_str(record, name)
            # a view is a parsed SELECT (plain dataclasses); pickling the
            # AST round-trips it without needing a statement deparser
            body = dumps_ast(catalog.get_view(name))
            encode_varint(record, len(body))
            record += body
            write_record(fh, bytes(record))

        for name in catalog.index_names():
            index = catalog.get_index(name)
            record = bytearray([_KIND_INDEX])
            encode_str(record, index.name)
            encode_str(record, index.table)
            encode_str(record, index.column)
            encode_str(record, index.kind)
            record.append(1 if index.unique else 0)
            write_record(fh, bytes(record))

        for table in catalog.stats.tables():
            record = bytearray([_KIND_STATS])
            encode_table_stats(record, catalog.stats.get(table))
            write_record(fh, bytes(record))

        write_record(fh, bytes([_KIND_END]))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def load_snapshot(path: str | Path) -> tuple[Catalog, int]:
    """Load a snapshot file into a fresh catalog.

    Returns ``(catalog, last_lsn)``.  Any framing damage — bad magic,
    torn record, CRC mismatch, missing end marker — raises
    :class:`~repro.errors.StorageError`; a snapshot never half-loads
    into garbage.
    """
    path = Path(path)
    catalog = Catalog()
    last_lsn = 0
    saw_header = False
    saw_end = False
    with open(path, "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            raise StorageError(f"{path} is not a repro snapshot "
                               f"(bad magic)")
        while True:
            payload = read_record(fh)
            if payload is None:
                break
            if not payload:
                raise StorageError("empty snapshot record")
            kind = payload[0]
            if kind == _KIND_HEADER:
                version, pos = decode_varint(payload, 1)
                if version != FORMAT_VERSION:
                    raise StorageError(
                        f"snapshot format version {version} is not "
                        f"supported (expected {FORMAT_VERSION})")
                last_lsn, pos = decode_varint(payload, pos)
                saw_header = True
            elif kind == _KIND_TABLE:
                name, pos = decode_str(payload, 1)
                schema, pos = decode_schema(payload, pos)
                columns, n_rows, pos = decode_columnar_columns(
                    payload, pos, len(schema))
                if columns:
                    rows = list(zip(*[values for values, _, _ in columns]))
                else:
                    rows = [() for _ in range(n_rows)]
                relation = Relation.from_trusted_rows(schema, rows)
                catalog.install_table(name, relation)
                # hand the decoded column vectors to the vectorized
                # engine's cache — a reopened table scans columnar from
                # its first query, with no transposition pass
                seed_columns(relation.rows, columns)
            elif kind == _KIND_PARTITION:
                name, pos = decode_str(payload, 1)
                column, pos = decode_str(payload, pos)
                count, pos = decode_varint(payload, pos)
                catalog.set_partition(name, column, count)
            elif kind == _KIND_VIEW:
                name, pos = decode_str(payload, 1)
                length, pos = decode_varint(payload, pos)
                if pos + length > len(payload):
                    raise StorageError("truncated view definition")
                catalog.create_view(name,
                                    loads_ast(payload[pos:pos + length]))
            elif kind == _KIND_INDEX:
                name, pos = decode_str(payload, 1)
                table, pos = decode_str(payload, pos)
                column, pos = decode_str(payload, pos)
                index_kind, pos = decode_str(payload, pos)
                if pos >= len(payload):
                    raise StorageError("truncated index definition")
                unique = payload[pos] != 0
                catalog.create_index(name, table, column,
                                     kind=index_kind, unique=unique)
            elif kind == _KIND_STATS:
                stats, pos = decode_table_stats(payload, 1)
                catalog.stats.put(stats.table, stats)
            elif kind == _KIND_END:
                saw_end = True
                break
            else:
                raise StorageError(
                    f"unknown snapshot record kind 0x{kind:02x}")
        if not saw_header or not saw_end:
            raise StorageError(f"{path} is truncated (missing "
                               f"{'header' if not saw_header else 'end'} "
                               f"record)")
    return catalog, last_lsn
