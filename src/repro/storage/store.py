"""The durable store: a database directory with a snapshot and a WAL.

Layout of a database directory::

    <path>/
        snapshot.bin   last checkpoint image (may be absent: never
                       checkpointed)
        wal.bin        write-ahead log of commits since that image

Lifecycle:

* :meth:`DurableStore.open` creates or recovers the directory: load the
  snapshot if present (else start from an empty catalog), then replay
  every WAL record whose LSN exceeds the snapshot's, stopping — and
  truncating — at the first torn or corrupt record (an interrupted
  append is an uncommitted transaction).
* :meth:`DurableStore.append_commit` is the **group-commit** entry:
  the committer is assigned the next LSN under the queue lock, its
  framed record joins the pending batch, and the call blocks until the
  single flusher thread has appended the whole batch with one
  ``write()`` and — with ``durability="commit"`` — one fsync *for
  every record in it* (committed-means-durable, amortized).  With
  ``"checkpoint"`` the batch is only flushed to the OS (fsync happens
  at checkpoint/close), and with ``"off"`` commits are not logged at
  all — only an explicit ``CHECKPOINT`` persists anything.  Called
  *before* the commit's in-memory apply: a failed batch fails every
  waiter in it, none of their applies proceed, and the torn tail is
  truncated back off the file.
* :meth:`DurableStore.checkpoint` compacts: write a fresh snapshot
  (atomic temp-file + rename), then reset the WAL.  A crash between the
  two is safe — the snapshot records the LSN it incorporates and replay
  skips records at or below it.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import BinaryIO

try:
    import fcntl
except ImportError:                                  # pragma: no cover
    fcntl = None        # non-POSIX: directory locking degrades to none

from ..catalog import Catalog
from ..errors import StorageError
from .codec import decode_varint, encode_varint, frame_record, read_record
from .snapshot import _fsync_dir, load_snapshot, write_snapshot
from .wal import WAL_MAGIC, apply_commit_ops, rebuild_dirty_indexes

SNAPSHOT_FILE = "snapshot.bin"
WAL_FILE = "wal.bin"
LOCK_FILE = "lock"


def _acquire_dir_lock(path: Path) -> "BinaryIO | None":
    """An exclusive advisory lock on ``<path>/lock``, or StorageError.

    Two engines appending to one WAL would fork the LSN sequence and
    silently lose acknowledged commits; a flock (auto-released by the
    OS on crash, so never stale) turns the second open into a clean
    error instead.
    """
    if fcntl is None:                                # pragma: no cover
        return None
    handle = open(path / LOCK_FILE, "a+b")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.close()
        raise StorageError(
            f"database directory {path} is already open in another "
            f"engine (its 'lock' file is held)") from None
    return handle


class _CommitTicket:
    """One committer's seat in a group-commit batch: its framed record,
    its pre-assigned LSN, and the event its thread blocks on until the
    flusher either made the batch durable or failed it."""

    __slots__ = ("frame", "lsn", "event", "error")

    def __init__(self, frame: bytes, lsn: int) -> None:
        self.frame = frame
        self.lsn = lsn
        self.event = threading.Event()
        self.error: "BaseException | None" = None


class DurableStore:
    """Filesystem state behind one durable :class:`~repro.api.Engine`."""

    def __init__(self, path: str | Path, durability: str = "commit",
                 group_commit_ms: float = 0.0) -> None:
        self.path = Path(path)
        self.durability = durability
        self.group_commit_ms = group_commit_ms
        self.last_lsn = 0       # highest *flushed* LSN
        self._wal = None        # append handle, opened by open()
        self._dir_lock = None   # exclusive flock held while open
        # -- group commit (see append_commit) --------------------------
        self._group_cond = threading.Condition()
        self._allocated_lsn = 0     # highest LSN handed to a committer
        self._pending: list[_CommitTicket] = []
        self._flusher: "threading.Thread | None" = None
        self._flusher_stop = False
        # serializes the flusher's batch IO against checkpoint()'s
        # snapshot-and-reset of the WAL handle
        self._io_lock = threading.Lock()
        #: batches flushed / records they carried (observability + the
        #: multi-writer bench's amortization evidence)
        self.flush_batches = 0
        self.flushed_records = 0
        # -- background-checkpoint signaling (set by the Engine) -------
        self.bytes_since_checkpoint = 0
        self.growth_threshold = 0           # 0: never signal
        self.growth_event: "threading.Event | None" = None

    # -- paths ---------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.path / SNAPSHOT_FILE

    @property
    def wal_path(self) -> Path:
        return self.path / WAL_FILE

    @property
    def logs_commits(self) -> bool:
        """Whether commits append WAL records (durability off skips the
        log entirely; only CHECKPOINT persists)."""
        return self.durability in ("commit", "checkpoint")

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, durability: str = "commit",
             group_commit_ms: float = 0.0,
             ) -> tuple["DurableStore", Catalog]:
        """Open-or-recover a database directory.

        Returns the store and the recovered catalog: snapshot image (or
        empty) plus the committed WAL suffix.
        """
        store = cls(path, durability, group_commit_ms)
        store.path.mkdir(parents=True, exist_ok=True)
        store._dir_lock = _acquire_dir_lock(store.path)
        if store.snapshot_path.exists():
            catalog, store.last_lsn = load_snapshot(store.snapshot_path)
        else:
            catalog = Catalog()
        store._recover_wal(catalog)
        # unbuffered: every append is one write() straight to the fd, so
        # after a failed append the file holds at most one partial
        # record — which _fail_append() truncates away
        store._wal = open(store.wal_path, "ab", buffering=0)
        if os.fstat(store._wal.fileno()).st_size == 0:
            store._wal.write(WAL_MAGIC)
            if durability != "off":
                # the *contents* of wal.bin are fsynced per commit, but
                # a brand-new file's directory entry (and the db dir's
                # own entry) must also reach disk, or power loss can
                # vanish the whole log out from under acknowledged
                # commits
                os.fsync(store._wal.fileno())
                _fsync_dir(store.path)
                _fsync_dir(store.path.parent)
        store._allocated_lsn = store.last_lsn
        if store.logs_commits:
            store._flusher = threading.Thread(
                target=store._flush_loop, name="repro-wal-flusher",
                daemon=True)
            store._flusher.start()
        return store, catalog

    def _recover_wal(self, catalog: Catalog) -> None:
        """Replay the WAL suffix after the snapshot's LSN; truncate the
        file at the first torn/corrupt record (a crashed append)."""
        if not self.wal_path.exists():
            return
        good_offset = len(WAL_MAGIC)
        dirty: set[str] = set()     # tables needing one index rebuild
        with open(self.wal_path, "rb") as fh:
            magic = fh.read(len(WAL_MAGIC))
            if len(magic) < len(WAL_MAGIC):
                good_offset = 0          # torn before the magic completed
            elif magic != WAL_MAGIC:
                raise StorageError(
                    f"{self.wal_path} is not a repro WAL (bad magic)")
            else:
                while True:
                    try:
                        payload = read_record(fh)
                        if payload is None:
                            break
                        if not payload:
                            # a zero-filled extension (crash persisted
                            # the file size, not the data) frames as a
                            # CRC-valid *empty* record — same treatment
                            # as any other torn tail
                            break
                        lsn, pos = decode_varint(payload, 0)
                    except StorageError:
                        break            # torn tail: uncommitted, discard
                    if lsn > self.last_lsn:
                        apply_commit_ops(catalog, payload, pos,
                                         dirty=dirty)
                        self.last_lsn = lsn
                    good_offset = fh.tell()
            file_size = fh.seek(0, os.SEEK_END)
        rebuild_dirty_indexes(catalog, dirty)
        if file_size > good_offset:
            with open(self.wal_path, "r+b") as fh:
                fh.truncate(good_offset)
                fh.flush()
                os.fsync(fh.fileno())
        if good_offset == 0:
            # rewrite the magic so the append handle starts clean
            with open(self.wal_path, "wb") as fh:
                fh.write(WAL_MAGIC)
                fh.flush()
                os.fsync(fh.fileno())

    def close(self) -> None:
        """Stop the flusher (draining queued batches first), fsync and
        close the WAL, release the directory lock.  The engine calls
        this with the commit barrier held exclusively, so no committer
        is between enqueue and wait."""
        flusher = self._flusher
        if flusher is not None:
            with self._group_cond:
                self._flusher_stop = True
                self._group_cond.notify_all()
            flusher.join()
            self._flusher = None
        if self._wal is not None:
            try:
                if self.durability != "off":
                    os.fsync(self._wal.fileno())
            finally:
                self._wal.close()
                self._wal = None
        if self._dir_lock is not None:
            self._dir_lock.close()      # releases the flock
            self._dir_lock = None

    # -- the write path ------------------------------------------------------

    def append_commit(self, ops_payload: bytes) -> int:
        """Sequence one commit record into the group-commit queue and
        block until it is durable; returns its LSN.

        The LSN is assigned under the queue lock — commit order on disk
        is the order committers passed through here, regardless of how
        the flusher batches them.  Called before the commit's in-memory
        apply while holding the commit barrier's read side: if the
        batch write (or its fsync, in ``commit`` durability) fails, the
        whole batch is truncated back off the file, *every* waiter in
        it gets :class:`~repro.errors.StorageError`, and none of their
        applies proceed.  A failed batch leaves a gap in the LSN
        sequence, which is harmless — recovery replays by
        ``lsn > snapshot lsn``, not by contiguity.  If even the
        truncation fails, the store poisons itself — further commits
        raise rather than write behind an unknown tail.
        """
        with self._group_cond:
            if self._wal is None or self._wal.closed \
                    or self._flusher_stop or self._flusher is None:
                raise StorageError(
                    "durable store is closed, or its WAL is in an "
                    "unknown state after a failed append — reopen the "
                    "database")
            self._allocated_lsn += 1
            lsn = self._allocated_lsn
            record = bytearray()
            encode_varint(record, lsn)
            record += ops_payload
            ticket = _CommitTicket(frame_record(bytes(record)), lsn)
            self._pending.append(ticket)
            self._group_cond.notify_all()
        ticket.event.wait()
        if ticket.error is not None:
            raise StorageError(
                f"commit was not made durable (its group-commit batch "
                f"failed): {ticket.error}")
        return lsn

    def _flush_loop(self) -> None:
        """The flusher thread: drain the pending queue in batches, one
        ``write()`` + (per durability) one fsync per batch.

        This thread owns only the WAL tail.  It must never touch the
        catalog or any engine lock — committers are *blocked on it*
        while holding their commit locks, so any such dependency is a
        deadlock (machine-checked by the ``lock-flusher`` analysis
        rule).
        """
        while True:
            with self._group_cond:
                while not self._pending and not self._flusher_stop:
                    self._group_cond.wait()
                if not self._pending:
                    return          # stop requested and queue drained
                if self.group_commit_ms > 0 and not self._flusher_stop:
                    # linger: let concurrent committers join this batch
                    self._group_cond.wait(self.group_commit_ms / 1000.0)
                batch = self._pending
                self._pending = []
            self._flush_batch(batch)

    def _flush_batch(self, batch: list[_CommitTicket]) -> None:
        """Append *batch* as one write (one fsync); fail all-or-none."""
        failure: "BaseException | None" = None
        frame = b"".join(ticket.frame for ticket in batch)
        with self._io_lock:
            wal = self._wal
            if wal is None or wal.closed:
                failure = StorageError(
                    "WAL is in an unknown state after a failed append")
            else:
                offset = os.fstat(wal.fileno()).st_size
                try:
                    written = wal.write(frame)
                    if written != len(frame):
                        raise StorageError(
                            f"short WAL write ({written}/{len(frame)} "
                            f"bytes)")
                    if self.durability == "commit":
                        os.fsync(wal.fileno())
                # a raise here would escape into the daemon flusher
                # thread and strand every waiter; the failure is
                # converted to StorageError and re-raised by each
                # committer blocked on this batch (append_commit)
                except BaseException as exc:  # repro: allow(hygiene-broad-except)
                    self._fail_append(offset)
                    failure = exc
        if failure is None:
            self.last_lsn = batch[-1].lsn
            self.flush_batches += 1
            self.flushed_records += len(batch)
            self.bytes_since_checkpoint += len(frame)
            event = self.growth_event
            if event is not None and self.growth_threshold > 0 \
                    and self.bytes_since_checkpoint >= \
                    self.growth_threshold:
                event.set()
        for ticket in batch:
            ticket.error = failure
            ticket.event.set()

    def _fail_append(self, offset: int) -> None:
        """Roll a failed batch back off the file (or poison the store).

        The truncation is fsynced: without that, a crash after the OS
        had already written back the aborted records would resurrect
        them on recovery.  If truncate *or* its fsync fails, the tail
        is in an unknown state and the store poisons itself.
        """
        try:
            os.ftruncate(self._wal.fileno(), offset)
            os.fsync(self._wal.fileno())
        except (OSError, ValueError):
            wal, self._wal = self._wal, None    # poisoned: see above
            try:
                if wal is not None and not wal.closed:
                    wal.close()
            except OSError:
                pass

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self, catalog: Catalog) -> None:
        """Compact the WAL into a fresh snapshot of *catalog*.

        Called with the engine's commit barrier held exclusively plus
        its write lock, so no commit is between LSN assignment and
        publish: the image and the LSN it claims to incorporate are
        consistent, and every allocated LSN is flushed.  The IO lock is
        belt-and-braces against a flusher batch that could otherwise
        straddle the handle swap.
        """
        with self._io_lock:
            if self._wal is not None:
                os.fsync(self._wal.fileno())
            write_snapshot(self.snapshot_path, catalog, self.last_lsn)
            # the snapshot is durable past every logged record: the WAL
            # can restart empty (its records are <= last_lsn and would
            # be skipped anyway — truncation only reclaims space)
            if self._wal is not None:
                self._wal.close()
            self._wal = open(self.wal_path, "wb", buffering=0)
            self._wal.write(WAL_MAGIC)
            os.fsync(self._wal.fileno())
            self.bytes_since_checkpoint = 0
            if self.growth_event is not None:
                self.growth_event.clear()


def save_database(path: str | Path, catalog: Catalog) -> Path:
    """One-shot export: write *catalog* as a fresh database directory
    (snapshot + empty WAL) that :class:`~repro.api.Engine` can open.

    Backs the shell's ``\\save <dir>`` for sessions that started
    in-memory; an engine already opened on a directory checkpoints
    instead.
    """
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    lock = _acquire_dir_lock(target)    # refuse to clobber a live db
    try:
        write_snapshot(target / SNAPSHOT_FILE, catalog, 0)
        with open(target / WAL_FILE, "wb") as fh:
            fh.write(WAL_MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(target)
        _fsync_dir(target.parent)
    finally:
        if lock is not None:
            lock.close()
    return target
