"""The durable store: a database directory with a snapshot and a WAL.

Layout of a database directory::

    <path>/
        snapshot.bin   last checkpoint image (may be absent: never
                       checkpointed)
        wal.bin        write-ahead log of commits since that image

Lifecycle:

* :meth:`DurableStore.open` creates or recovers the directory: load the
  snapshot if present (else start from an empty catalog), then replay
  every WAL record whose LSN exceeds the snapshot's, stopping — and
  truncating — at the first torn or corrupt record (an interrupted
  append is an uncommitted transaction).
* :meth:`DurableStore.append_commit` appends one commit record under
  the engine's write lock, *before* the in-memory apply; with
  ``durability="commit"`` the record is fsynced so a committed
  transaction survives power loss (committed-means-durable), with
  ``"checkpoint"`` it is only flushed to the OS (fsync happens at
  checkpoint/close), and with ``"off"`` commits are not logged at all —
  only an explicit ``CHECKPOINT`` persists anything.
* :meth:`DurableStore.checkpoint` compacts: write a fresh snapshot
  (atomic temp-file + rename), then reset the WAL.  A crash between the
  two is safe — the snapshot records the LSN it incorporates and replay
  skips records at or below it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO

try:
    import fcntl
except ImportError:                                  # pragma: no cover
    fcntl = None        # non-POSIX: directory locking degrades to none

from ..catalog import Catalog
from ..errors import StorageError
from .codec import decode_varint, encode_varint, frame_record, read_record
from .snapshot import _fsync_dir, load_snapshot, write_snapshot
from .wal import WAL_MAGIC, apply_commit_ops, rebuild_dirty_indexes

SNAPSHOT_FILE = "snapshot.bin"
WAL_FILE = "wal.bin"
LOCK_FILE = "lock"


def _acquire_dir_lock(path: Path) -> "BinaryIO | None":
    """An exclusive advisory lock on ``<path>/lock``, or StorageError.

    Two engines appending to one WAL would fork the LSN sequence and
    silently lose acknowledged commits; a flock (auto-released by the
    OS on crash, so never stale) turns the second open into a clean
    error instead.
    """
    if fcntl is None:                                # pragma: no cover
        return None
    handle = open(path / LOCK_FILE, "a+b")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.close()
        raise StorageError(
            f"database directory {path} is already open in another "
            f"engine (its 'lock' file is held)") from None
    return handle


class DurableStore:
    """Filesystem state behind one durable :class:`~repro.api.Engine`."""

    def __init__(self, path: str | Path,
                 durability: str = "commit") -> None:
        self.path = Path(path)
        self.durability = durability
        self.last_lsn = 0
        self._wal = None        # append handle, opened by open()
        self._dir_lock = None   # exclusive flock held while open

    # -- paths ---------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.path / SNAPSHOT_FILE

    @property
    def wal_path(self) -> Path:
        return self.path / WAL_FILE

    @property
    def logs_commits(self) -> bool:
        """Whether commits append WAL records (durability off skips the
        log entirely; only CHECKPOINT persists)."""
        return self.durability in ("commit", "checkpoint")

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path,
             durability: str = "commit") -> tuple["DurableStore", Catalog]:
        """Open-or-recover a database directory.

        Returns the store and the recovered catalog: snapshot image (or
        empty) plus the committed WAL suffix.
        """
        store = cls(path, durability)
        store.path.mkdir(parents=True, exist_ok=True)
        store._dir_lock = _acquire_dir_lock(store.path)
        if store.snapshot_path.exists():
            catalog, store.last_lsn = load_snapshot(store.snapshot_path)
        else:
            catalog = Catalog()
        store._recover_wal(catalog)
        # unbuffered: every append is one write() straight to the fd, so
        # after a failed append the file holds at most one partial
        # record — which _fail_append() truncates away
        store._wal = open(store.wal_path, "ab", buffering=0)
        if os.fstat(store._wal.fileno()).st_size == 0:
            store._wal.write(WAL_MAGIC)
            if durability != "off":
                # the *contents* of wal.bin are fsynced per commit, but
                # a brand-new file's directory entry (and the db dir's
                # own entry) must also reach disk, or power loss can
                # vanish the whole log out from under acknowledged
                # commits
                os.fsync(store._wal.fileno())
                _fsync_dir(store.path)
                _fsync_dir(store.path.parent)
        return store, catalog

    def _recover_wal(self, catalog: Catalog) -> None:
        """Replay the WAL suffix after the snapshot's LSN; truncate the
        file at the first torn/corrupt record (a crashed append)."""
        if not self.wal_path.exists():
            return
        good_offset = len(WAL_MAGIC)
        dirty: set[str] = set()     # tables needing one index rebuild
        with open(self.wal_path, "rb") as fh:
            magic = fh.read(len(WAL_MAGIC))
            if len(magic) < len(WAL_MAGIC):
                good_offset = 0          # torn before the magic completed
            elif magic != WAL_MAGIC:
                raise StorageError(
                    f"{self.wal_path} is not a repro WAL (bad magic)")
            else:
                while True:
                    try:
                        payload = read_record(fh)
                        if payload is None:
                            break
                        if not payload:
                            # a zero-filled extension (crash persisted
                            # the file size, not the data) frames as a
                            # CRC-valid *empty* record — same treatment
                            # as any other torn tail
                            break
                        lsn, pos = decode_varint(payload, 0)
                    except StorageError:
                        break            # torn tail: uncommitted, discard
                    if lsn > self.last_lsn:
                        apply_commit_ops(catalog, payload, pos,
                                         dirty=dirty)
                        self.last_lsn = lsn
                    good_offset = fh.tell()
            file_size = fh.seek(0, os.SEEK_END)
        rebuild_dirty_indexes(catalog, dirty)
        if file_size > good_offset:
            with open(self.wal_path, "r+b") as fh:
                fh.truncate(good_offset)
                fh.flush()
                os.fsync(fh.fileno())
        if good_offset == 0:
            # rewrite the magic so the append handle starts clean
            with open(self.wal_path, "wb") as fh:
                fh.write(WAL_MAGIC)
                fh.flush()
                os.fsync(fh.fileno())

    def close(self) -> None:
        if self._wal is not None:
            try:
                if self.durability != "off":
                    os.fsync(self._wal.fileno())
            finally:
                self._wal.close()
                self._wal = None
        if self._dir_lock is not None:
            self._dir_lock.close()      # releases the flock
            self._dir_lock = None

    # -- the write path ------------------------------------------------------

    def append_commit(self, ops_payload: bytes) -> int:
        """Sequence and append one commit record; returns its LSN.

        Called under the engine's write lock, before the commit's
        in-memory apply: if the append (or the fsync, in ``commit``
        durability) fails, the exception aborts the commit and the
        shared catalog is never touched.  The failed record is
        truncated back off the file so the log never holds an aborted
        transaction (whose LSN the *next* commit will reuse); if even
        that truncation fails, the store poisons itself — further
        commits raise rather than write behind an unknown tail.
        """
        if self._wal is None or self._wal.closed:
            raise StorageError(
                "durable store is closed, or its WAL is in an unknown "
                "state after a failed append — reopen the database")
        lsn = self.last_lsn + 1
        record = bytearray()
        encode_varint(record, lsn)
        record += ops_payload
        frame = frame_record(bytes(record))
        offset = os.fstat(self._wal.fileno()).st_size
        try:
            written = self._wal.write(frame)
            if written != len(frame):
                raise StorageError(
                    f"short WAL write ({written}/{len(frame)} bytes)")
            if self.durability == "commit":
                os.fsync(self._wal.fileno())
        except BaseException:
            self._fail_append(offset)
            raise
        self.last_lsn = lsn
        return lsn

    def _fail_append(self, offset: int) -> None:
        """Roll a failed append off the file (or poison the store).

        The truncation is fsynced: without that, a crash after the OS
        had already written back the aborted record would resurrect it
        on recovery.  If truncate *or* its fsync fails, the tail is in
        an unknown state and the store poisons itself.
        """
        try:
            os.ftruncate(self._wal.fileno(), offset)
            os.fsync(self._wal.fileno())
        except (OSError, ValueError):
            wal, self._wal = self._wal, None    # poisoned: see above
            try:
                if wal is not None and not wal.closed:
                    wal.close()
            except OSError:
                pass

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self, catalog: Catalog) -> None:
        """Compact the WAL into a fresh snapshot of *catalog*.

        Called under the engine's write lock so the image and the LSN it
        claims to incorporate are consistent.
        """
        if self._wal is not None:
            os.fsync(self._wal.fileno())
        write_snapshot(self.snapshot_path, catalog, self.last_lsn)
        # the snapshot is durable past every logged record: the WAL can
        # restart empty (its records are <= last_lsn and would be
        # skipped anyway — truncation only reclaims space)
        if self._wal is not None:
            self._wal.close()
        self._wal = open(self.wal_path, "wb", buffering=0)
        self._wal.write(WAL_MAGIC)
        os.fsync(self._wal.fileno())


def save_database(path: str | Path, catalog: Catalog) -> Path:
    """One-shot export: write *catalog* as a fresh database directory
    (snapshot + empty WAL) that :class:`~repro.api.Engine` can open.

    Backs the shell's ``\\save <dir>`` for sessions that started
    in-memory; an engine already opened on a directory checkpoints
    instead.
    """
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    lock = _acquire_dir_lock(target)    # refuse to clobber a live db
    try:
        write_snapshot(target / SNAPSHOT_FILE, catalog, 0)
        with open(target / WAL_FILE, "wb") as fh:
            fh.write(WAL_MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(target)
        _fsync_dir(target.parent)
    finally:
        if lock is not None:
            lock.close()
    return target
