"""The on-disk codec: SQL values, rows, schemas and statistics as bytes,
framed into length-prefixed records with a per-record CRC32.

Both durable artifacts — the snapshot (:mod:`repro.storage.snapshot`)
and the write-ahead log (:mod:`repro.storage.wal`) — are sequences of
**records**::

    [u32 payload length][u32 crc32(payload)][payload bytes]

A record is readable iff its payload is complete *and* the stored CRC
matches, so a torn write (power loss mid-append) or bit rot can never
decode into garbage data: :func:`read_record` raises
:class:`~repro.errors.StorageError` — the recovery path treats a bad
record as the end of the log, the snapshot loader treats it as a corrupt
database.

Inside a payload, values use a one-byte type tag followed by a
type-specific body.  Integers are arbitrary-precision (length-prefixed
two's complement, matching Python's ``int``), floats are IEEE-754
doubles (bit-exact round trips, NaN included), text is UTF-8.  The tag
set covers exactly the engine's value model
(:mod:`repro.datatypes`): NULL, BOOLEAN, INTEGER, FLOAT, TEXT — DATE
values are ISO-8601 strings and travel as TEXT.
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib
from typing import Any, BinaryIO, Sequence

from ..datatypes import SQLType
from ..errors import StorageError
from ..schema import Attribute, Schema
from ..stats.collect import ColumnStats, TableStats

#: What the decode side reads from: raw bytes or an mmap'ed view.
ReadBuffer = bytes | memoryview

#: Sanity bound on a single record's payload (1 GiB); a larger length
#: field is treated as corruption, not an allocation request.
MAX_RECORD_BYTES = 1 << 30

_RECORD_HEADER = struct.Struct("<II")
_FLOAT = struct.Struct("<d")

# -- value tags --------------------------------------------------------------

_TAG_NULL = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_TEXT = 0x05


# -- varints (unsigned LEB128) ------------------------------------------------

def encode_varint(out: bytearray, value: int) -> None:
    """Append *value* (>= 0) as an unsigned LEB128 varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(buf: ReadBuffer, pos: int) -> tuple[int, int]:
    """Read a varint at *pos*; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise StorageError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise StorageError("varint too long")


# -- SQL values --------------------------------------------------------------

def encode_value(out: bytearray, value: Any) -> None:
    """Append one SQL value (tag + body)."""
    if value is None:
        out.append(_TAG_NULL)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        body = value.to_bytes((value.bit_length() + 8) // 8, "little",
                              signed=True)
        out.append(_TAG_INT)
        encode_varint(out, len(body))
        out += body
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _FLOAT.pack(value)
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_TAG_TEXT)
        encode_varint(out, len(body))
        out += body
    else:
        raise StorageError(
            f"cannot encode a {type(value).__name__} value ({value!r}); "
            f"the SQL value model is NULL/bool/int/float/str")


def decode_value(buf: ReadBuffer, pos: int) -> tuple[Any, int]:
    """Read one SQL value at *pos*; returns ``(value, next_pos)``."""
    if pos >= len(buf):
        raise StorageError("truncated value")
    tag = buf[pos]
    pos += 1
    if tag == _TAG_NULL:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        length, pos = decode_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise StorageError("truncated integer value")
        return int.from_bytes(buf[pos:end], "little", signed=True), end
    if tag == _TAG_FLOAT:
        end = pos + 8
        if end > len(buf):
            raise StorageError("truncated float value")
        return _FLOAT.unpack(bytes(buf[pos:end]))[0], end
    if tag == _TAG_TEXT:
        length, pos = decode_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise StorageError("truncated text value")
        try:
            return bytes(buf[pos:end]).decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise StorageError(f"corrupt text value: {exc}") from None
    raise StorageError(f"unknown value tag 0x{tag:02x}")


def encode_str(out: bytearray, text: str) -> None:
    """Append a bare (untagged) UTF-8 string — names, type words."""
    body = text.encode("utf-8")
    encode_varint(out, len(body))
    out += body


def decode_str(buf: ReadBuffer, pos: int) -> tuple[str, int]:
    length, pos = decode_varint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise StorageError("truncated string")
    try:
        return bytes(buf[pos:end]).decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise StorageError(f"corrupt string: {exc}") from None


# -- rows --------------------------------------------------------------------

def encode_row(out: bytearray, row: Sequence[Any]) -> None:
    """Append one row: arity varint + each value."""
    encode_varint(out, len(row))
    for value in row:
        encode_value(out, value)


def decode_row(buf: ReadBuffer, pos: int) -> tuple[tuple, int]:
    arity, pos = decode_varint(buf, pos)
    values = []
    for _ in range(arity):
        value, pos = decode_value(buf, pos)
        values.append(value)
    return tuple(values), pos


def encode_rows(out: bytearray, rows: Sequence[Sequence[Any]]) -> None:
    """Append a row block: count varint + each row."""
    encode_varint(out, len(rows))
    for row in rows:
        encode_row(out, row)


def decode_rows(buf: bytes, pos: int) -> tuple[list[tuple], int]:
    """Decode a row block — the recovery hot path.

    The value dispatch of :func:`decode_value` is inlined into one loop
    (with the common single-byte varint lengths special-cased), because
    reopening a database decodes every stored cell through here and the
    per-call overhead dominates otherwise.  *buf* must be ``bytes``.
    """
    count, pos = decode_varint(buf, pos)
    rows: list[tuple] = []
    append = rows.append
    size = len(buf)
    int_from_bytes = int.from_bytes
    unpack_float = _FLOAT.unpack_from
    for _ in range(count):
        arity, pos = decode_varint(buf, pos)
        values = []
        add = values.append
        for _ in range(arity):
            if pos >= size:
                raise StorageError("truncated value")
            tag = buf[pos]
            pos += 1
            if tag == _TAG_INT or tag == _TAG_TEXT:
                if pos >= size:
                    raise StorageError("truncated value")
                length = buf[pos]
                pos += 1
                if length & 0x80:
                    length, pos = decode_varint(buf, pos - 1)
                end = pos + length
                if end > size:
                    raise StorageError("truncated value")
                if tag == _TAG_INT:
                    add(int_from_bytes(buf[pos:end], "little",
                                       signed=True))
                else:
                    try:
                        add(buf[pos:end].decode("utf-8"))
                    except UnicodeDecodeError as exc:
                        raise StorageError(
                            f"corrupt text value: {exc}") from None
                pos = end
            elif tag == _TAG_NULL:
                add(None)
            elif tag == _TAG_FLOAT:
                if pos + 8 > size:
                    raise StorageError("truncated float value")
                add(unpack_float(buf, pos)[0])
                pos += 8
            elif tag == _TAG_TRUE:
                add(True)
            elif tag == _TAG_FALSE:
                add(False)
            else:
                raise StorageError(f"unknown value tag 0x{tag:02x}")
        append(tuple(values))
    return rows, pos


# -- columnar row blocks (snapshot tables) ------------------------------------
#
# A snapshot stores each table's rows column-wise: per column, a kind
# byte picks either a *packed* layout (int64 / float64 / text vectors,
# decoded with one struct.unpack or str slice pass — C speed) or the
# generic tagged per-value layout (mixed types, bools, big integers).
# NULLs travel in an optional bitmap.  The WAL keeps the row-wise
# encoding: its records are small deltas where framing, not decode
# speed, matters.

_COL_GENERIC = 0
_COL_INT64 = 1
_COL_FLOAT64 = 2
_COL_TEXT = 3

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _column_kind(values: Sequence[Any]) -> int:
    kind = -1
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return _COL_GENERIC
        if isinstance(value, int):
            if not _INT64_MIN <= value <= _INT64_MAX:
                return _COL_GENERIC
            this = _COL_INT64
        elif isinstance(value, float):
            this = _COL_FLOAT64
        elif isinstance(value, str):
            this = _COL_TEXT
        else:
            return _COL_GENERIC
        if kind == -1:
            kind = this
        elif kind != this:
            return _COL_GENERIC
    return _COL_INT64 if kind == -1 else kind   # all-NULL: any packed kind


def _encode_column(out: bytearray, values: list[Any]) -> None:
    kind = _column_kind(values)
    out.append(kind)
    if kind == _COL_GENERIC:
        for value in values:
            encode_value(out, value)
        return
    nulls = [i for i, value in enumerate(values) if value is None]
    if nulls:
        out.append(1)
        bitmap = bytearray((len(values) + 7) // 8)
        for i in nulls:
            bitmap[i >> 3] |= 1 << (i & 7)
        out += bitmap
        present = [value for value in values if value is not None]
    else:
        out.append(0)
        present = values
    if kind == _COL_INT64:
        out += struct.pack(f"<{len(present)}q", *present)
    elif kind == _COL_FLOAT64:
        out += struct.pack(f"<{len(present)}d", *present)
    else:
        out += struct.pack(f"<{len(present)}I",
                           *[len(text) for text in present])
        blob = "".join(present).encode("utf-8")
        encode_varint(out, len(blob))
        out += blob


#: Codec column kind -> the execution-engine column-kind names used by
#: :mod:`repro.engine.columnar` (GENERIC holds bools / big ints / mixed
#: values, so it maps to the catch-all kind with has_nulls unknown).
_KIND_NAMES = {_COL_INT64: "num", _COL_FLOAT64: "num", _COL_TEXT: "text"}


def _decode_column(buf: bytes, pos: int,
                   n_rows: int) -> tuple[list[Any], int]:
    values, _, _, pos = _decode_column_full(buf, pos, n_rows)
    return values, pos


def _decode_column_full(
        buf: bytes, pos: int,
        n_rows: int) -> tuple[list[Any], str, bool, int]:
    """Decode one column, also reporting the engine column kind and
    whether NULLs are present (``"any"`` is always paired with True —
    the generic layout does not track nulls separately)."""
    if pos >= len(buf):
        raise StorageError("truncated column")
    kind = buf[pos]
    pos += 1
    if kind == _COL_GENERIC:
        values = []
        for _ in range(n_rows):
            value, pos = decode_value(buf, pos)
            values.append(value)
        return values, "any", True, pos
    if kind not in (_COL_INT64, _COL_FLOAT64, _COL_TEXT):
        raise StorageError(f"unknown column kind 0x{kind:02x}")
    if pos >= len(buf):
        raise StorageError("truncated column")
    has_nulls = buf[pos]
    pos += 1
    bitmap = b""
    count = n_rows
    if has_nulls:
        width = (n_rows + 7) // 8
        if pos + width > len(buf):
            raise StorageError("truncated null bitmap")
        bitmap = buf[pos:pos + width]
        pos += width
        count = n_rows - sum(bin(byte).count("1") for byte in bitmap)
    if kind == _COL_TEXT:
        end = pos + 4 * count
        if end > len(buf):
            raise StorageError("truncated text lengths")
        lengths = struct.unpack_from(f"<{count}I", buf, pos)
        pos = end
        blob_len, pos = decode_varint(buf, pos)
        if pos + blob_len > len(buf):
            raise StorageError("truncated text blob")
        try:
            blob = buf[pos:pos + blob_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StorageError(f"corrupt text column: {exc}") from None
        pos += blob_len
        present: list[Any] = []
        offset = 0
        for length in lengths:
            present.append(blob[offset:offset + length])
            offset += length
        if offset != len(blob):
            raise StorageError("text column lengths disagree with blob")
    else:
        width = 8 * count
        if pos + width > len(buf):
            raise StorageError("truncated packed column")
        fmt = "q" if kind == _COL_INT64 else "d"
        present = list(struct.unpack_from(f"<{count}{fmt}", buf, pos))
        pos += width
    name = _KIND_NAMES[kind]
    if not has_nulls:
        return present, name, False, pos
    values = []
    it = iter(present)
    for i in range(n_rows):
        if bitmap[i >> 3] & (1 << (i & 7)):
            values.append(None)
        else:
            values.append(next(it))
    return values, name, True, pos


def encode_columnar_rows(out: bytearray, n_columns: int,
                         rows: Sequence[tuple]) -> None:
    """Append a table's rows column-wise (see the section comment)."""
    encode_varint(out, len(rows))
    for position in range(n_columns):
        _encode_column(out, [row[position] for row in rows])


def decode_columnar_columns(
        buf: bytes, pos: int, n_columns: int
) -> tuple[list[tuple[list[Any], str, bool]], int, int]:
    """Decode a columnar block *without* transposing: per column a
    ``(values, kind, has_nulls)`` tuple ready to seed the vectorized
    engine's column cache.  Returns ``(columns, n_rows, pos)``."""
    n_rows, pos = decode_varint(buf, pos)
    columns = []
    for _ in range(n_columns):
        values, kind, has_nulls, pos = _decode_column_full(
            buf, pos, n_rows)
        columns.append((values, kind, has_nulls))
    return columns, n_rows, pos


def decode_columnar_rows(buf: bytes, pos: int,
                         n_columns: int) -> tuple[list[tuple], int]:
    columns, n_rows, pos = decode_columnar_columns(buf, pos, n_columns)
    if not columns:
        return [() for _ in range(n_rows)], pos
    return list(zip(*[values for values, _, _ in columns])), pos


# -- schemas -----------------------------------------------------------------

def encode_schema(out: bytearray, schema: Schema) -> None:
    """Append a schema: column count + (name, SQLType value) per column."""
    encode_varint(out, len(schema))
    for attribute in schema:
        encode_str(out, attribute.name)
        encode_str(out, attribute.type.value)


def decode_schema(buf: ReadBuffer, pos: int) -> tuple[Schema, int]:
    count, pos = decode_varint(buf, pos)
    attributes = []
    for _ in range(count):
        name, pos = decode_str(buf, pos)
        type_word, pos = decode_str(buf, pos)
        try:
            sql_type = SQLType(type_word)
        except ValueError:
            raise StorageError(
                f"unknown column type {type_word!r} in stored "
                f"schema") from None
        attributes.append(Attribute(name, sql_type))
    return Schema(attributes), pos


def _decode_float(buf: ReadBuffer, pos: int) -> tuple[float, int]:
    end = pos + 8
    if end > len(buf):
        raise StorageError("truncated float")
    return _FLOAT.unpack(bytes(buf[pos:end]))[0], end


# -- statistics --------------------------------------------------------------

def encode_table_stats(out: bytearray, stats: TableStats) -> None:
    """Append one table's ANALYZE statistics."""
    encode_str(out, stats.table)
    encode_varint(out, stats.row_count)
    encode_varint(out, len(stats.columns))
    for column in stats.columns.values():
        encode_str(out, column.name)
        encode_varint(out, column.n_distinct)
        out += _FLOAT.pack(column.null_frac)
        encode_value(out, column.min_value)
        encode_value(out, column.max_value)
        encode_varint(out, len(column.mcvs))
        for value, frequency in column.mcvs:
            encode_value(out, value)
            out += _FLOAT.pack(frequency)


def decode_table_stats(buf: ReadBuffer, pos: int) -> tuple[TableStats, int]:
    table, pos = decode_str(buf, pos)
    row_count, pos = decode_varint(buf, pos)
    column_count, pos = decode_varint(buf, pos)
    columns: dict[str, ColumnStats] = {}
    for _ in range(column_count):
        name, pos = decode_str(buf, pos)
        n_distinct, pos = decode_varint(buf, pos)
        null_frac, pos = _decode_float(buf, pos)
        min_value, pos = decode_value(buf, pos)
        max_value, pos = decode_value(buf, pos)
        mcv_count, pos = decode_varint(buf, pos)
        mcvs = []
        for _ in range(mcv_count):
            value, pos = decode_value(buf, pos)
            frequency, pos = _decode_float(buf, pos)
            mcvs.append((value, frequency))
        columns[name] = ColumnStats(
            name=name, n_distinct=n_distinct, null_frac=null_frac,
            min_value=min_value, max_value=max_value, mcvs=tuple(mcvs))
    return TableStats(table=table, row_count=row_count,
                      columns=columns), pos


# -- parsed-statement (view) payloads ----------------------------------------
#
# Views are stored as pickled SQL ASTs.  Loading goes through a
# restricted unpickler that only resolves the AST's own dataclass/enum
# modules: the CRC frame protects against *corruption*, this protects
# against a *crafted* database directory — opening untrusted data must
# never execute arbitrary code.

_AST_MODULES = ("repro.sql.ast", "repro.expressions.ast")


class _AstUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        if module in _AST_MODULES and not name.startswith("_"):
            return super().find_class(module, name)
        raise StorageError(
            f"stored view references {module}.{name}, which is not a "
            f"SQL AST class — refusing to load it")


def dumps_ast(statement: Any) -> bytes:
    """Pickle a parsed SQL statement for a view record."""
    return pickle.dumps(statement, protocol=pickle.HIGHEST_PROTOCOL)


def loads_ast(data: bytes) -> Any:
    """Unpickle a view record, resolving only SQL AST classes."""
    try:
        return _AstUnpickler(io.BytesIO(data)).load()
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"corrupt view definition: {exc}") from exc


# -- record framing ----------------------------------------------------------

def frame_record(payload: bytes) -> bytes:
    """One framed record (length + CRC32 + payload) as a single buffer —
    the WAL appends it with one write call.

    The size cap is enforced on the write side too: a record the reader
    would reject as implausible must fail the commit/checkpoint *now*,
    with a clear error — never get acknowledged as durable and then be
    dropped as corruption on the next open.
    """
    if len(payload) > MAX_RECORD_BYTES:
        raise StorageError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte per-record limit — commit the "
            f"write-set in smaller transactions")
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def write_record(fh: BinaryIO, payload: bytes) -> None:
    """Append one framed record (length + CRC32 + payload)."""
    fh.write(frame_record(payload))


def read_record(fh: BinaryIO) -> bytes | None:
    """Read the record at the current offset.

    Returns the payload, or None at a clean end of file.  Raises
    :class:`~repro.errors.StorageError` for a torn record (header or
    payload cut short) or a CRC mismatch — the caller decides whether
    that means "end of a crashed log" or "corrupt database".
    """
    header = fh.read(_RECORD_HEADER.size)
    if not header:
        return None
    if len(header) < _RECORD_HEADER.size:
        raise StorageError("torn record header")
    length, crc = _RECORD_HEADER.unpack(header)
    if length > MAX_RECORD_BYTES:
        raise StorageError(f"implausible record length {length}")
    payload = fh.read(length)
    if len(payload) < length:
        raise StorageError("torn record payload")
    if zlib.crc32(payload) != crc:
        raise StorageError("record CRC mismatch")
    return payload
