"""Storage: secondary indexes and the durable persistence subsystem.

* :mod:`repro.storage.index` — secondary indexes created with
  ``CREATE INDEX`` and consulted by the cost-based physical lowering
  (:class:`~repro.engine.physical.IndexScan`,
  :class:`~repro.engine.physical.IndexNestedLoopJoin`).
* :mod:`repro.storage.codec` — the on-disk value/row codec and the
  CRC32-framed record format shared by snapshot and WAL.
* :mod:`repro.storage.snapshot` — atomic binary snapshots of the whole
  catalog (tables, views, index definitions, statistics).
* :mod:`repro.storage.wal` — the write-ahead log of committed
  write-sets, replayed on open.
* :mod:`repro.storage.store` — :class:`DurableStore`, the database
  directory (open-or-recover, fsync-on-commit, checkpointing) behind
  ``Engine(path=...)``.

The durable modules import :mod:`repro.catalog` (which itself imports
:mod:`repro.storage.index`), so they are exported lazily to keep the
package import acyclic.
"""

from typing import Any

from .index import HashIndex, SecondaryIndex, SortedIndex, build_index

__all__ = [
    "DurableStore", "HashIndex", "SecondaryIndex", "SortedIndex",
    "build_index", "load_snapshot", "save_database", "write_snapshot",
]

_LAZY = {
    "DurableStore": ("repro.storage.store", "DurableStore"),
    "save_database": ("repro.storage.store", "save_database"),
    "load_snapshot": ("repro.storage.snapshot", "load_snapshot"),
    "write_snapshot": ("repro.storage.snapshot", "write_snapshot"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    return getattr(importlib.import_module(module_name), attr)
