"""Storage-side access structures.

Currently: secondary indexes (:mod:`repro.storage.index`) created with
``CREATE INDEX`` and consulted by the cost-based physical lowering
(:class:`~repro.engine.physical.IndexScan`,
:class:`~repro.engine.physical.IndexNestedLoopJoin`).
"""

from .index import HashIndex, SecondaryIndex, SortedIndex, build_index

__all__ = ["HashIndex", "SecondaryIndex", "SortedIndex", "build_index"]
