"""Secondary index structures: hash (equality) and sorted (equality +
range).

An index maps one column's values to the full rows that carry them
(rows are immutable tuples, so storing them directly is safe and avoids
positional bookkeeping across deletes).  NULL keys are never indexed —
SQL equality and range predicates cannot match NULL — but they count
toward the maintained row total so the staleness check below sees them.

Maintenance is two-layered:

* the catalog forwards INSERT/DELETE row deltas eagerly
  (:meth:`SecondaryIndex.insert` / :meth:`SecondaryIndex.remove`);
* code that mutates a stored :class:`~repro.relation.Relation` directly
  (bulk loaders, the TPC-H generator — which only ever *append* or
  replace whole relations) bypasses those hooks, so every lookup path
  first calls :meth:`SecondaryIndex.ensure`, which rebuilds when the
  maintained row count disagrees with the table's.

The count check is a heuristic aimed at those append/replace loaders: a
hypothetical mutation that edits rows *in place* without changing the
count (nothing in the codebase does — DML goes through the session,
which maintains indexes eagerly) would not be detected.  If an UPDATE
statement is ever added, route it through the catalog's maintenance
hooks like INSERT/DELETE rather than relying on ``ensure``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Sequence

from ..errors import CatalogError, IntegrityError

#: Index kinds accepted by ``CREATE INDEX ... USING <kind>``.
INDEX_KINDS = ("hash", "sorted")


class SecondaryIndex:
    """Base class: one index over one column of one table."""

    kind = "abstract"

    def __init__(self, name: str, table: str, column: str, position: int,
                 unique: bool = False) -> None:
        self.name = name
        self.table = table
        self.column = column
        self.position = position
        self.unique = unique
        self._row_count = 0     # rows seen, NULL keys included

    # -- structure-specific primitives ---------------------------------------

    def _clear(self) -> None:
        raise NotImplementedError

    def _add(self, key: Any, row: tuple) -> None:
        raise NotImplementedError

    def _discard(self, key: Any, row: tuple) -> None:
        raise NotImplementedError

    def _count(self, key: Any) -> int:
        raise NotImplementedError

    def lookup(self, key: Any) -> list[tuple]:
        """All rows whose indexed column equals *key* (NULL matches none)."""
        raise NotImplementedError

    def sample_key(self) -> Any:
        """An arbitrary indexed key, or None when nothing is indexed —
        lets an empty lookup check the probe value's comparability
        against real column data (SQL error parity with a scan)."""
        raise NotImplementedError

    # -- shared maintenance ---------------------------------------------------

    def build(self, rows: Sequence[tuple]) -> None:
        """(Re)build from scratch over *rows*."""
        self._clear()
        self._row_count = 0
        for row in rows:
            self.insert(row)

    def insert(self, row: tuple) -> None:
        """Index one newly inserted row.

        A key that is not comparable with the existing keys (sorted
        indexes order by key) raises :class:`CatalogError`, not a bare
        ``TypeError`` — callers roll maintenance failures back by
        catching the library's error hierarchy.
        """
        key = row[self.position]
        if key is not None:
            try:
                if self.unique and self._count(key):
                    raise IntegrityError(
                        f"duplicate value {key!r} violates unique index "
                        f"{self.name!r} on {self.table}({self.column})")
                self._add(key, row)
            except TypeError:
                raise CatalogError(
                    f"value {key!r} is not comparable with the keys of "
                    f"{self.kind} index {self.name!r} on "
                    f"{self.table}({self.column})") from None
        self._row_count += 1

    def remove(self, row: tuple) -> None:
        """Un-index one deleted row (one occurrence)."""
        key = row[self.position]
        if key is not None:
            try:
                self._discard(key, row)
            except TypeError:
                pass   # never indexed: insert would have refused the key
        self._row_count -= 1

    def ensure(self, rows: Sequence[tuple]) -> None:
        """Rebuild if the table was mutated behind the catalog's back."""
        if self._row_count != len(rows):
            self.build(rows)

    def clone(self) -> "SecondaryIndex":
        """An independent copy sharing the (immutable) row tuples.

        Transactions mutate a clone copy-on-write style; the original
        stays pinned in concurrent readers' snapshots, so cloning must
        duplicate every internal container the original could share.
        """
        copy = type(self)(self.name, self.table, self.column,
                          self.position, self.unique)
        copy._row_count = self._row_count
        copy._adopt(self)
        return copy

    def _adopt(self, source: "SecondaryIndex") -> None:
        """Copy *source*'s structure-specific containers into self."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self._row_count

    def describe(self) -> str:
        flavor = "unique " if self.unique else ""
        return (f"{flavor}{self.kind} index {self.name} on "
                f"{self.table}({self.column})")


class HashIndex(SecondaryIndex):
    """Equality lookups in O(1): a dict from key to its rows."""

    kind = "hash"

    def __init__(self, name: str, table: str, column: str, position: int,
                 unique: bool = False) -> None:
        super().__init__(name, table, column, position, unique)
        self._buckets: dict[Any, list[tuple]] = {}

    def _clear(self) -> None:
        self._buckets = {}

    def _add(self, key: Any, row: tuple) -> None:
        self._buckets.setdefault(key, []).append(row)

    def _discard(self, key: Any, row: tuple) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(row)
        except ValueError:
            return
        if not bucket:
            del self._buckets[key]

    def _count(self, key: Any) -> int:
        return len(self._buckets.get(key, ()))

    def lookup(self, key: Any) -> list[tuple]:
        if key is None:
            return []
        return self._buckets.get(key, [])

    def sample_key(self) -> Any:
        return next(iter(self._buckets), None)

    def build(self, rows: Sequence[tuple]) -> None:
        """Bulk (re)build: one pass into fresh buckets, instead of
        per-row :meth:`insert` calls — the path snapshot recovery and
        bulk deletes take."""
        buckets: dict[Any, list[tuple]] = {}
        position = self.position
        unique = self.unique
        try:
            for row in rows:
                key = row[position]
                if key is None:
                    continue
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [row]
                elif unique:
                    raise IntegrityError(
                        f"duplicate value {key!r} violates unique index "
                        f"{self.name!r} on {self.table}({self.column})")
                else:
                    bucket.append(row)
        except TypeError:
            raise CatalogError(
                f"unhashable key in {self.kind} index {self.name!r} on "
                f"{self.table}({self.column})") from None
        self._buckets = buckets
        self._row_count = len(rows)

    def _adopt(self, source: "HashIndex") -> None:
        self._buckets = {key: list(rows)
                         for key, rows in source._buckets.items()}


def _entry_key(entry: tuple[Any, tuple]) -> Any:
    return entry[0]


class SortedIndex(SecondaryIndex):
    """Equality *and* range lookups over a sorted ``(key, row)`` list.

    Ordering compares keys only (never whole rows, which may hold NULLs
    or mixed types); equal keys keep insertion order.
    """

    kind = "sorted"

    def __init__(self, name: str, table: str, column: str, position: int,
                 unique: bool = False) -> None:
        super().__init__(name, table, column, position, unique)
        self._entries: list[tuple[Any, tuple]] = []

    def _clear(self) -> None:
        self._entries = []

    def _add(self, key: Any, row: tuple) -> None:
        insort(self._entries, (key, row), key=_entry_key)

    def _span(self, key: Any) -> tuple[int, int]:
        return (bisect_left(self._entries, key, key=_entry_key),
                bisect_right(self._entries, key, key=_entry_key))

    def _discard(self, key: Any, row: tuple) -> None:
        lo, hi = self._span(key)
        for position in range(lo, hi):
            if self._entries[position][1] == row:
                del self._entries[position]
                return

    def _count(self, key: Any) -> int:
        lo, hi = self._span(key)
        return hi - lo

    def lookup(self, key: Any) -> list[tuple]:
        if key is None:
            return []
        lo, hi = self._span(key)
        return [row for _, row in self._entries[lo:hi]]

    def sample_key(self) -> Any:
        return self._entries[0][0] if self._entries else None

    def build(self, rows: Sequence[tuple]) -> None:
        """Bulk (re)build: collect-and-sort (stable, so equal keys keep
        row order like repeated ``insort_right`` would) instead of a
        per-row ``insort``, which shifts O(n) entries per insert."""
        position = self.position
        entries = [(row[position], row) for row in rows
                   if row[position] is not None]
        try:
            entries.sort(key=_entry_key)
        except TypeError:
            raise CatalogError(
                f"keys of sorted index {self.name!r} on "
                f"{self.table}({self.column}) are not mutually "
                f"comparable") from None
        if self.unique:
            for i in range(1, len(entries)):
                if entries[i - 1][0] == entries[i][0]:
                    raise IntegrityError(
                        f"duplicate value {entries[i][0]!r} violates "
                        f"unique index {self.name!r} on "
                        f"{self.table}({self.column})")
        self._entries = entries
        self._row_count = len(rows)

    def _adopt(self, source: "SortedIndex") -> None:
        self._entries = list(source._entries)

    def lookup_range(self, low: Any, high: Any, low_inclusive: bool = True,
                     high_inclusive: bool = True) -> list[tuple]:
        """Rows with ``low <op> key <op> high``; ``None`` bounds are open."""
        lo = 0
        if low is not None:
            lo = (bisect_left(self._entries, low, key=_entry_key)
                  if low_inclusive
                  else bisect_right(self._entries, low, key=_entry_key))
        hi = len(self._entries)
        if high is not None:
            hi = (bisect_right(self._entries, high, key=_entry_key)
                  if high_inclusive
                  else bisect_left(self._entries, high, key=_entry_key))
        return [row for _, row in self._entries[lo:hi]]


def build_index(kind: str, name: str, table: str, column: str,
                position: int, rows: Sequence[tuple],
                unique: bool = False) -> SecondaryIndex:
    """Construct and populate an index of *kind* over *rows*."""
    if kind == "hash":
        index: SecondaryIndex = HashIndex(name, table, column, position,
                                          unique)
    elif kind == "sorted":
        index = SortedIndex(name, table, column, position, unique)
    else:
        raise CatalogError(
            f"unknown index kind {kind!r}; expected one of "
            f"{list(INDEX_KINDS)}")
    index.build(rows)
    return index
