"""The write-ahead log: committed write-sets as replayable logical ops.

Each committed transaction appends **one** CRC32-framed record
(:mod:`repro.storage.codec`), so transaction atomicity and record
atomicity coincide: a torn tail record is an uncommitted transaction
and is discarded wholesale on recovery — the database reopens exactly
as of the last fully-written commit.

A record's payload is ``varint LSN`` + ``varint op count`` + the ops.
Ops are *logical*, not physical: row changes travel as bag deltas
(deleted rows + inserted rows against the pre-transaction contents), so
a small DML against a big table logs only its delta, and DDL travels as
definitions (an index op stores name/table/column/kind/unique and is
rebuilt from the replayed rows, never its internal structure).

Op set::

    1  create_table  name, schema, rows
    2  drop_table    name
    3  rows_delta    name, deleted rows, inserted rows
    4  create_view   name, pickled parsed SELECT
    5  drop_view     name
    6  create_index  name, table, column, kind, unique
    7  drop_index    name
    8  put_stats     TableStats
    9  set_partition name, column, count  (hash-partitioning declaration)

Replay applies ops in record order through the plain
:class:`~repro.catalog.Catalog` mutators; after a ``rows_delta`` the
table's indexes are rebuilt from the resulting rows (replay is offline,
single-threaded, and a committed transaction's ops cannot re-raise
integrity errors they already passed once).
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from ..catalog import Catalog
from ..errors import StorageError
from .codec import (
    decode_rows, decode_schema, decode_str, decode_table_stats,
    decode_varint, dumps_ast, encode_rows, encode_schema, encode_str,
    encode_table_stats, encode_varint, loads_ast,
)

WAL_MAGIC = b"RPROWL01"

_OP_CREATE_TABLE = 1
_OP_DROP_TABLE = 2
_OP_ROWS_DELTA = 3
_OP_CREATE_VIEW = 4
_OP_DROP_VIEW = 5
_OP_CREATE_INDEX = 6
_OP_DROP_INDEX = 7
_OP_PUT_STATS = 8
_OP_SET_PARTITION = 9


# -- building ops ------------------------------------------------------------

_PACK_FLOAT = struct.Struct("<d").pack


def _delta_key(row: tuple) -> tuple:
    """Bit-exact multiset identity for delta matching.

    Python equality is too coarse for durability: ``1 == 1.0 == True``
    and ``float('nan') != float('nan')``, so an equality-keyed delta
    either logs nothing for a type-changing rewrite or can never be
    re-matched against the bit-exactly decoded rows on replay.  Keying
    by (type name, float bit pattern | value) makes commit-time and
    replay-time agree on exactly the codec's notion of sameness.
    """
    return tuple(
        (t.__name__, _PACK_FLOAT(value) if t is float else value)
        for value in row for t in (type(value),))


def bag_delta(old_rows: Sequence[tuple],
              new_rows: Sequence[tuple]) -> tuple[list[tuple], list[tuple]]:
    """``(deleted, inserted)`` multiset difference between two row lists.

    DML only appends and filters, so replaying "remove the deleted
    multiset, append the inserted rows" over the old list reproduces the
    committed contents (rows with equal :func:`_delta_key` are
    interchangeable).  The O(|old| + |new|) fallback for write-sets the
    transaction did not track row by row.
    """
    counts: dict[tuple, list] = {}
    for row in new_rows:
        key = _delta_key(row)
        entry = counts.get(key)
        if entry is None:
            counts[key] = [1, row]
        else:
            entry[0] += 1
    for row in old_rows:
        key = _delta_key(row)
        entry = counts.get(key)
        if entry is None:
            counts[key] = [-1, row]
        else:
            entry[0] -= 1
    deleted: list[tuple] = []
    inserted: list[tuple] = []
    for surplus, row in counts.values():
        if surplus > 0:
            inserted.extend([row] * surplus)
        elif surplus < 0:
            deleted.extend([row] * (-surplus))
    return deleted, inserted


def net_delta(deleted: Sequence[tuple],
              inserted: Sequence[tuple]) -> tuple[list[tuple], list[tuple]]:
    """Cancel rows inserted and later deleted inside one transaction.

    The tracked write-set logs every DML row it touched; a row both
    inserted and deleted in the same transaction must net out, because
    replay matches deletions against the *pre-transaction* table.
    O(|delta|).
    """
    if not deleted or not inserted:
        return list(deleted), list(inserted)
    available: dict[tuple, int] = {}
    for row in inserted:
        key = _delta_key(row)
        available[key] = available.get(key, 0) + 1
    kept_deleted: list[tuple] = []
    cancelled: dict[tuple, int] = {}
    for row in deleted:
        key = _delta_key(row)
        if available.get(key, 0) > 0:
            available[key] -= 1
            cancelled[key] = cancelled.get(key, 0) + 1
        else:
            kept_deleted.append(row)
    kept_inserted: list[tuple] = []
    for row in inserted:
        key = _delta_key(row)
        if cancelled.get(key, 0) > 0:
            cancelled[key] -= 1
        else:
            kept_inserted.append(row)
    return kept_deleted, kept_inserted


def encode_commit_ops(ops: list[tuple]) -> bytes:
    """Encode a commit's op list (without the LSN prefix — the store
    prepends it when the record is sequenced)."""
    out = bytearray()
    encode_varint(out, len(ops))
    for op in ops:
        kind = op[0]
        if kind == "create_table":
            _, name, schema, rows = op
            out.append(_OP_CREATE_TABLE)
            encode_str(out, name)
            encode_schema(out, schema)
            encode_rows(out, rows)
        elif kind == "drop_table":
            out.append(_OP_DROP_TABLE)
            encode_str(out, op[1])
        elif kind == "rows_delta":
            _, name, deleted, inserted = op
            out.append(_OP_ROWS_DELTA)
            encode_str(out, name)
            encode_rows(out, deleted)
            encode_rows(out, inserted)
        elif kind == "create_view":
            _, name, query = op
            out.append(_OP_CREATE_VIEW)
            encode_str(out, name)
            body = dumps_ast(query)
            encode_varint(out, len(body))
            out += body
        elif kind == "drop_view":
            out.append(_OP_DROP_VIEW)
            encode_str(out, op[1])
        elif kind == "create_index":
            _, name, table, column, index_kind, unique = op
            out.append(_OP_CREATE_INDEX)
            encode_str(out, name)
            encode_str(out, table)
            encode_str(out, column)
            encode_str(out, index_kind)
            out.append(1 if unique else 0)
        elif kind == "drop_index":
            out.append(_OP_DROP_INDEX)
            encode_str(out, op[1])
        elif kind == "put_stats":
            out.append(_OP_PUT_STATS)
            encode_table_stats(out, op[1])
        elif kind == "set_partition":
            _, name, column, count = op
            out.append(_OP_SET_PARTITION)
            encode_str(out, name)
            encode_str(out, column)
            encode_varint(out, count)
        else:
            raise StorageError(f"unknown commit op {kind!r}")
    return bytes(out)


# -- replaying ops -----------------------------------------------------------

# repro: allow(lock-discipline) - replay mutates a catalog that is
# private to the recovery pass: DurableStore.open rebuilds it before
# the Engine (and its RWLock) exists or any session can see it.
def _apply_rows_delta(catalog: Catalog, name: str,
                      deleted: list[tuple], inserted: list[tuple],
                      dirty: "set[str] | None") -> None:
    relation = catalog.get(name)
    if deleted:
        remaining: dict[tuple, int] = {}
        for row in deleted:
            key = _delta_key(row)
            remaining[key] = remaining.get(key, 0) + 1
        pending = len(deleted)
        rows = []
        for position, row in enumerate(relation.rows):
            key = _delta_key(row)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                pending -= 1
                if not pending:
                    # all deletions matched: adopt the rest un-keyed,
                    # so a small delete costs O(matched prefix + delta)
                    rows.extend(relation.rows[position + 1:])
                    break
            else:
                rows.append(row)
        if pending:
            raise StorageError(
                f"WAL rows_delta for table {name!r} deletes rows the "
                f"table does not hold (log and snapshot disagree)")
    else:
        rows = list(relation.rows)
    rows.extend(inserted)
    relation.rows = rows
    if dirty is None:
        for index in catalog.indexes_on(name):
            index.build(rows)
    else:
        # recovery replays many records back to back and nothing reads
        # the indexes in between: note the table and let the caller
        # rebuild each index once, after the last record
        dirty.add(name)
    catalog._bump_data(name)


def rebuild_dirty_indexes(catalog: Catalog, dirty: "set[str]") -> None:
    """Rebuild the indexes of every replayed-into table, once each —
    the deferred half of the replay-time ``dirty`` optimization."""
    for name in dirty:
        if name not in catalog:
            continue            # dropped (or replaced) later in the log
        rows = catalog.get(name).rows
        for index in catalog.indexes_on(name):
            index.build(rows)


# repro: allow(lock-discipline) - same as _apply_rows_delta: the
# catalog being replayed into is recovery-private, not yet shared.
def apply_commit_ops(catalog: Catalog, payload: "bytes | memoryview",
                     pos: int,
                     dirty: "set[str] | None" = None) -> None:
    """Replay one commit record's ops (payload after the LSN) onto
    *catalog*.

    With *dirty*, row deltas skip per-record index maintenance and add
    the table name to the set instead; the caller must finish with
    :func:`rebuild_dirty_indexes` — O(commits × delta) recovery instead
    of O(commits × table size)."""
    count, pos = decode_varint(payload, pos)
    for _ in range(count):
        if pos >= len(payload):
            raise StorageError("truncated commit op")
        op = payload[pos]
        pos += 1
        if op == _OP_CREATE_TABLE:
            name, pos = decode_str(payload, pos)
            schema, pos = decode_schema(payload, pos)
            rows, pos = decode_rows(payload, pos)
            from ..relation import Relation
            catalog.install_table(
                name, Relation.from_trusted_rows(schema, rows))
        elif op == _OP_DROP_TABLE:
            name, pos = decode_str(payload, pos)
            catalog.drop(name)
        elif op == _OP_ROWS_DELTA:
            name, pos = decode_str(payload, pos)
            deleted, pos = decode_rows(payload, pos)
            inserted, pos = decode_rows(payload, pos)
            _apply_rows_delta(catalog, name, deleted, inserted, dirty)
        elif op == _OP_CREATE_VIEW:
            name, pos = decode_str(payload, pos)
            length, pos = decode_varint(payload, pos)
            if pos + length > len(payload):
                raise StorageError("truncated view op")
            query = loads_ast(bytes(payload[pos:pos + length]))
            pos += length
            catalog.create_view(name, query)
        elif op == _OP_DROP_VIEW:
            name, pos = decode_str(payload, pos)
            catalog.drop_view(name)
        elif op == _OP_CREATE_INDEX:
            name, pos = decode_str(payload, pos)
            table, pos = decode_str(payload, pos)
            column, pos = decode_str(payload, pos)
            index_kind, pos = decode_str(payload, pos)
            if pos >= len(payload):
                raise StorageError("truncated index op")
            unique = payload[pos] != 0
            pos += 1
            catalog.create_index(name, table, column, kind=index_kind,
                                 unique=unique)
        elif op == _OP_DROP_INDEX:
            name, pos = decode_str(payload, pos)
            catalog.drop_index(name)
        elif op == _OP_PUT_STATS:
            stats, pos = decode_table_stats(payload, pos)
            catalog.stats.put(stats.table, stats)
        elif op == _OP_SET_PARTITION:
            name, pos = decode_str(payload, pos)
            column, pos = decode_str(payload, pos)
            count, pos = decode_varint(payload, pos)
            catalog.set_partition(name, column, count)
        else:
            raise StorageError(f"unknown WAL op 0x{op:02x}")


def collect_commit_ops(txn: Any, created: list, dropped: list,
                       written: list, new_views: list, gone_views: list,
                       new_indexes: list, gone_indexes: list
                       ) -> list[tuple]:
    """The logical write-set of a validated transaction, as replayable
    ops.

    Consumes the diff :func:`repro.api.transaction.compute_commit_diff`
    computed and :func:`~repro.api.transaction.validate_commit` refined
    (the recovered catalog must equal the live one op for op, so there
    is exactly one diff), and only adds what replay needs that the
    apply does not: row deltas for written tables, and the definitions
    of indexes the apply installs implicitly via table swaps.  Replay
    order mirrors the apply order — table drops, index drops, table
    creates (with their indexes), row deltas, views, index creates,
    statistics."""
    private = txn.catalog
    final_tables = private._tables
    dropped_set = set(dropped)
    created_set = set(created)

    ops: list[tuple] = []
    for key in dropped:
        ops.append(("drop_table", key))
    for name, _swapped in gone_indexes:
        if txn._base_indexes[name].table in dropped_set:
            continue        # vanished with its table's drop op
        ops.append(("drop_index", name))
    for key in created:
        relation = final_tables[key]
        ops.append(("create_table", key, relation.schema, relation.rows))
        declared = private.partition_of(key)
        if declared is not None:
            ops.append(("set_partition", key, declared[0], declared[1]))
        for index in private.indexes_on(key):
            ops.append(("create_index", index.name, index.table,
                        index.column, index.kind, index.unique))
    for key in written:
        tracked = txn._wal_deltas.get(key)
        if tracked is not None:
            deleted, inserted = net_delta(tracked[0], tracked[1])
        else:
            # privatized through a path that did not track its rows:
            # diff the whole table (correct, just not O(delta))
            deleted, inserted = bag_delta(txn._base_tables[key].rows,
                                          final_tables[key].rows)
        if deleted or inserted:
            ops.append(("rows_delta", key, deleted, inserted))

    for name in gone_views:
        ops.append(("drop_view", name))
    for name, query in new_views:
        ops.append(("create_view", name, query))

    for index, _swapped in new_indexes:
        if index.table in created_set:
            continue        # logged with its table's create op
        ops.append(("create_index", index.name, index.table,
                    index.column, index.kind, index.unique))

    finally_gone = dropped_set - created_set
    for table, stats in private.stats._stats.items():
        if table in finally_gone:
            continue
        if txn._base_stats.get(table) is not stats:
            ops.append(("put_stats", stats))
    return ops
