"""Bag-semantics relations.

A :class:`Relation` couples a :class:`~repro.schema.Schema` with a list of
rows (plain tuples of values).  Duplicate rows are meaningful: the algebra
of the paper (Figure 1) is defined over bags, and the provenance
representation deliberately duplicates result tuples — one copy per
combination of contributing input tuples.

The bag set-operations (union/intersect/difference with multiplicity
arithmetic) live here so both the executor and the test suite share one
implementation.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from .datatypes import render_value
from .errors import SchemaError
from .schema import Attribute, Schema

Row = tuple  # a row is a plain tuple of values


class Relation:
    """A named-schema bag of rows."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]] = ()):
        self.schema = schema
        self.rows: list[Row] = [self._coerce(schema, row) for row in rows]

    @staticmethod
    def _coerce(schema: Schema, row: Sequence[Any]) -> Row:
        values = tuple(row)
        if len(values) != len(schema):
            raise SchemaError(
                f"row arity {len(values)} does not match schema arity "
                f"{len(schema)} ({list(schema.names)})")
        return values

    @classmethod
    def from_columns(cls, names: Sequence[str],
                     rows: Iterable[Sequence[Any]]) -> "Relation":
        """Convenience constructor from column names + row data."""
        return cls(Schema(Attribute(n) for n in names), rows)

    @classmethod
    def from_trusted_rows(cls, schema: Schema,
                          rows: list[Row]) -> "Relation":
        """Adopt *rows* without copying or coercing.

        The caller guarantees *rows* is a list of tuples matching the
        schema's arity — the engine sink and the bag-algebra internals,
        whose rows are tuples by construction, use this to skip the
        per-row re-tupling of ``__init__``.  The list is adopted, not
        copied: the caller must not mutate it afterwards.
        """
        relation = cls.__new__(cls)
        relation.schema = schema
        relation.rows = rows
        return relation

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Relation({list(self.schema.names)}, {len(self.rows)} rows)"

    # -- mutation (used by the catalog / DML only) ---------------------------

    def insert(self, row: Sequence[Any]) -> None:
        """Append one row (arity-checked)."""
        self.rows.append(self._coerce(self.schema, row))

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    # -- bag algebra ---------------------------------------------------------

    def multiset(self) -> Counter:
        """Multiplicity map of the rows.  Hashable because values are."""
        return Counter(self.rows)

    def distinct(self) -> "Relation":
        """Duplicate-eliminated copy (set projection on all attributes)."""
        seen: dict[Row, None] = dict.fromkeys(self.rows)
        return Relation.from_trusted_rows(self.schema, list(seen))

    def _check_compatible(self, other: "Relation") -> None:
        if len(self.schema) != len(other.schema):
            raise SchemaError(
                f"set operation over incompatible arities "
                f"{len(self.schema)} vs {len(other.schema)}")

    def bag_union(self, other: "Relation") -> "Relation":
        """``T1 ∪_B T2`` — multiplicities add (SQL UNION ALL)."""
        self._check_compatible(other)
        return Relation.from_trusted_rows(
            self.schema, [*self.rows, *other.rows])

    def bag_intersect(self, other: "Relation") -> "Relation":
        """``T1 ∩_B T2`` — multiplicity is min(n, m)."""
        self._check_compatible(other)
        counts = other.multiset()
        taken: Counter = Counter()
        result = []
        for row in self.rows:
            if taken[row] < counts.get(row, 0):
                taken[row] += 1
                result.append(row)
        return Relation.from_trusted_rows(self.schema, result)

    def bag_difference(self, other: "Relation") -> "Relation":
        """``T1 −_B T2`` — multiplicity is max(n − m, 0)."""
        self._check_compatible(other)
        remaining = other.multiset()
        result = []
        for row in self.rows:
            if remaining.get(row, 0) > 0:
                remaining[row] -= 1
            else:
                result.append(row)
        return Relation.from_trusted_rows(self.schema, result)

    def set_union(self, other: "Relation") -> "Relation":
        """``T1 ∪_S T2`` — duplicate-free union."""
        return self.bag_union(other).distinct()

    def set_intersect(self, other: "Relation") -> "Relation":
        """``T1 ∩_S T2`` — duplicate-free intersection."""
        return self.bag_intersect(other).distinct()

    def set_difference(self, other: "Relation") -> "Relation":
        """``T1 −_S T2`` — rows of T1 absent from T2, duplicate-free."""
        self._check_compatible(other)
        exclude = set(other.rows)
        seen: dict[Row, None] = dict.fromkeys(
            row for row in self.rows if row not in exclude)
        return Relation.from_trusted_rows(self.schema, list(seen))

    # -- comparisons used by tests -------------------------------------------

    def bag_equal(self, other: "Relation") -> bool:
        """True iff both relations hold the same rows with multiplicity."""
        return self.multiset() == other.multiset()

    def project_names(self, names: Sequence[str]) -> "Relation":
        """Bag projection onto *names* (test/bench helper)."""
        positions = self.schema.positions(names)
        return Relation(
            self.schema.project(names),
            [tuple(row[p] for p in positions) for row in self.rows])

    def sorted(self, key: Callable[[Row], Any] | None = None) -> "Relation":
        """Rows sorted deterministically (NULLs first), for stable output."""
        def default_key(row: Row):
            return tuple((value is not None, value) for value in row)

        return Relation(self.schema, sorted(self.rows, key=key or default_key))

    # -- display ---------------------------------------------------------------

    def pretty(self, max_rows: int = 50) -> str:
        """An aligned ASCII table of the first *max_rows* rows."""
        names = list(self.schema.names)
        rendered = [[render_value(v) for v in row]
                    for row in self.rows[:max_rows]]
        widths = [len(n) for n in names]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [" | ".join(n.ljust(w) for n, w in zip(names, widths)), sep]
        lines.extend(
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
            for row in rendered)
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)
