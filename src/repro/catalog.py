"""The catalog: the set of named base relations a query can reference.

The provenance rewriter needs to know, for every base-relation access, the
relation's schema — :func:`Catalog.get` is the single lookup point used by
the analyzer and by ``CrossBase`` construction.

The catalog also owns **view definitions** (parsed ``SELECT`` statements,
macro-expanded by the analyzer at reference time), **secondary indexes**
(:mod:`repro.storage.index`, created by ``CREATE INDEX`` and maintained
on INSERT/DELETE), **table statistics** (:mod:`repro.stats`, collected by
``ANALYZE``) and a **generation counter** (:attr:`Catalog.version`) that
is bumped by every DDL change — table, view or index creation,
replacement and removal.  Cached query plans are keyed by that counter
*and* by :attr:`Catalog.stats_version` (bumped by ``ANALYZE``), so any
change the planner's decisions depend on invalidates them; row-level DML
(INSERT/DELETE) deliberately bumps neither, because plans remain valid —
only statistics go stale.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence, TYPE_CHECKING

from .errors import CatalogError
from .relation import Relation
from .schema import Schema
from .stats import StatsRegistry, analyze_relation
from .storage.index import SecondaryIndex, build_index

if TYPE_CHECKING:  # pragma: no cover
    from .sql.ast import SelectStmt


class Catalog:
    """A mapping from lower-cased table names to :class:`Relation` objects,
    plus named view definitions, secondary indexes, statistics and a DDL
    generation counter."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}
        self._views: dict[str, "SelectStmt"] = {}
        self._indexes: dict[str, SecondaryIndex] = {}
        # per-table view of _indexes, so the DML hot path resolves a
        # table's indexes with one dict lookup instead of a scan
        self._indexes_by_table: dict[str, list[SecondaryIndex]] = {}
        self._version = 0
        # per-table data generation: bumped when a table's Relation
        # object is swapped wholesale (committed DML) — the counter
        # snapshot-isolated transactions validate against at commit
        self._data_versions: dict[str, int] = {}
        # hash-partitioning declarations: table -> (column, count).
        # The partition spec is planner-visible metadata (the parallel
        # lowering pass keys on it), so changes are DDL: they bump the
        # generation counter and re-key cached plans.
        self._partitions: dict[str, tuple[str, int]] = {}
        self.stats = StatsRegistry()

    # -- versioning -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Generation counter, bumped by every DDL change."""
        return self._version

    @property
    def stats_version(self) -> int:
        """Statistics generation, bumped by every ``ANALYZE``."""
        return self.stats.generation

    def _bump(self) -> None:
        self._version += 1

    def bump_ddl(self) -> None:
        """Record a DDL change applied out-of-band (a committed
        transaction's index DDL that was installed via a table swap
        rather than replayed), so cached plans re-key."""
        self._bump()

    def data_version(self, name: str) -> int:
        """Data generation of one table: bumped by every committed swap
        of the table's :class:`Relation` (and by create/register, so the
        counter stays monotonic across drop-and-recreate)."""
        return self._data_versions.get(name.lower(), 0)

    def data_versions(self) -> dict[str, int]:
        """A copy of every table's data generation (snapshot capture)."""
        return dict(self._data_versions)

    def _bump_data(self, key: str) -> None:
        self._data_versions[key] = self._data_versions.get(key, 0) + 1

    # -- tables ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self) -> list[str]:
        """All table names, in creation order."""
        return list(self._tables)

    def create(self, name: str, schema: Schema,
               rows: Iterable[Sequence[Any]] = ()) -> Relation:
        """Create a table; raises :class:`CatalogError` if it exists."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Relation(schema, rows)
        self._tables[key] = table
        self._bump()
        self._bump_data(key)
        return table

    def register(self, name: str, relation: Relation,
                 replace: bool = False) -> None:
        """Register an existing :class:`Relation` under *name*.

        The data changed wholesale: old statistics are meaningless and
        are discarded; existing indexes are rebuilt against the new
        relation's schema (re-resolving their column's position), and an
        index whose column no longer exists is dropped with the table
        definition that carried it.
        """
        key = name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        # Validate every index rebuild against the new data *before*
        # mutating anything: a unique violation (or incomparable sorted
        # key) must fail the whole registration, not leave the table
        # swapped with a broken index behind it.
        rebuilt: list[tuple[SecondaryIndex, SecondaryIndex]] = []
        dropped: list[SecondaryIndex] = []
        for index in self.indexes_on(key):
            if index.column not in relation.schema:
                dropped.append(index)
                continue
            replacement = build_index(
                index.kind, index.name, index.table, index.column,
                relation.schema.position(index.column), relation.rows,
                index.unique)
            rebuilt.append((index, replacement))
        self._tables[key] = relation
        self.stats.discard(key)
        spec = self._partitions.get(key)
        if spec is not None and spec[0] not in relation.schema:
            del self._partitions[key]   # partition column went with the
            # table definition that declared it
        for index in dropped:
            self.drop_index(index.name)
        for old, new in rebuilt:
            self._indexes[old.name] = new
            siblings = self._indexes_by_table[old.table]
            siblings[siblings.index(old)] = new
        self._bump()
        self._bump_data(key)

    def drop(self, name: str) -> None:
        """Remove a table (and its indexes and statistics)."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self.stats.discard(key)
        self._partitions.pop(key, None)
        for index in self._indexes_by_table.pop(key, ()):
            del self._indexes[index.name]
        self._bump()
        self._bump_data(key)   # monotonic across drop-and-recreate

    def swap_table(self, name: str, relation: Relation,
                   indexes: Sequence[SecondaryIndex]) -> None:
        """Atomically replace a table's :class:`Relation` and its index
        objects with post-transaction versions (the commit apply step).

        Data-only: the DDL generation counter is *not* bumped (cached
        plans stay valid), the data generation is.  *indexes* is the
        authoritative post-commit index list for the table — index
        objects created or dropped inside the committing transaction are
        installed / removed here; the caller bumps the DDL counter
        separately for each such index DDL operation.
        """
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        for index in self._indexes_by_table.get(key, ()):
            del self._indexes[index.name]
        installed = list(indexes)
        self._tables[key] = relation
        if installed:
            self._indexes_by_table[key] = installed
        else:
            self._indexes_by_table.pop(key, None)
        for index in installed:
            self._indexes[index.name] = index
        self._bump_data(key)

    def install_table(self, name: str, relation: Relation,
                      indexes: Sequence[SecondaryIndex] = ()) -> None:
        """Install a table created inside a committing transaction,
        adopting the transaction's private :class:`Relation` and index
        objects.  DDL — bumps the generation counter like ``create``."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = relation
        installed = list(indexes)
        if installed:
            self._indexes_by_table[key] = installed
            for index in installed:
                self._indexes[index.name] = index
        self._bump()
        self._bump_data(key)

    def install_index(self, index: SecondaryIndex) -> None:
        """Install an already-built index object (a committing
        transaction's prevalidated CREATE INDEX).  DDL — bumps the
        generation counter like ``create_index``."""
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self._indexes[index.name] = index
        self._indexes_by_table.setdefault(index.table, []).append(index)
        self._bump()

    def snapshot(self) -> "Catalog":
        """A consistent point-in-time copy for lock-free readers.

        The container dicts are copied; the :class:`Relation`, index and
        statistics objects are shared by reference.  That is safe because
        committed writes *swap* those objects wholesale (copy-on-write)
        instead of mutating them in place — a snapshot keeps serving the
        versions that were current when it was taken.  Version counters
        are pinned, so plans cached against the snapshot key correctly.
        """
        copy = Catalog.__new__(Catalog)
        copy._tables = dict(self._tables)
        copy._views = dict(self._views)
        copy._indexes = dict(self._indexes)
        copy._indexes_by_table = {
            table: list(indexes)
            for table, indexes in self._indexes_by_table.items()}
        copy._version = self._version
        copy._data_versions = dict(self._data_versions)
        copy._partitions = dict(self._partitions)
        copy.stats = self.stats.snapshot()
        return copy

    def get(self, name: str) -> Relation:
        """Look up a table; raises :class:`CatalogError` if absent."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {name!r} does not exist; known tables: "
                f"{self.names()}") from None

    # -- hash partitioning -----------------------------------------------------

    def set_partition(self, name: str, column: str, count: int) -> None:
        """Declare *name* hash-partitioned on *column* into *count*
        partitions.  DDL — bumps the generation counter so cached plans
        re-lower with (or without) partition-aware operators."""
        key = name.lower()
        relation = self.get(key)
        column = column.lower()
        if column not in relation.schema:
            raise CatalogError(
                f"table {name!r} has no column {column!r}; columns: "
                f"{list(relation.schema.names)}")
        if count < 1:
            raise CatalogError(
                f"partition count must be >= 1, got {count}")
        self._partitions[key] = (column, count)
        self._bump()

    def partition_of(self, name: str) -> tuple[str, int] | None:
        """``(column, count)`` for a hash-partitioned table, else None."""
        return self._partitions.get(name.lower())

    def partitions(self) -> dict[str, tuple[str, int]]:
        """A copy of every partition declaration (snapshot capture)."""
        return dict(self._partitions)

    # -- views ----------------------------------------------------------------

    @property
    def views(self) -> dict[str, "SelectStmt"]:
        """The live view-name -> parsed-SELECT mapping (lower-cased keys).

        The analyzer reads this mapping directly; mutate it only through
        :meth:`create_view` / :meth:`drop_view` so the generation counter
        stays in sync.
        """
        return self._views

    def view_names(self) -> list[str]:
        """All view names, in creation order."""
        return list(self._views)

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def create_view(self, name: str, query: "SelectStmt",
                    replace: bool = True) -> None:
        """Register (or replace) a view defined by a parsed SELECT."""
        key = name.lower()
        if key in self._views and not replace:
            raise CatalogError(f"view {name!r} already exists")
        self._views[key] = query
        self._bump()

    def drop_view(self, name: str) -> None:
        """Remove a view; raises :class:`CatalogError` if absent."""
        key = name.lower()
        if key not in self._views:
            raise CatalogError(f"view {name!r} does not exist")
        del self._views[key]
        self._bump()

    def get_view(self, name: str) -> "SelectStmt":
        """Look up a view definition; raises :class:`CatalogError` if absent."""
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(
                f"view {name!r} does not exist; known views: "
                f"{self.view_names()}") from None

    # -- secondary indexes -----------------------------------------------------

    def create_index(self, name: str, table: str, column: str,
                     kind: str = "hash",
                     unique: bool = False) -> SecondaryIndex:
        """Create (and populate) a secondary index; DDL — bumps the
        generation counter, so cached plans re-lower against it."""
        key = name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        relation = self.get(table)
        table_key = table.lower()
        if column.lower() not in relation.schema:
            raise CatalogError(
                f"table {table!r} has no column {column!r}; columns: "
                f"{list(relation.schema.names)}")
        position = relation.schema.position(column.lower())
        index = build_index(kind, key, table_key, column.lower(), position,
                            relation.rows, unique)
        self._indexes[key] = index
        self._indexes_by_table.setdefault(table_key, []).append(index)
        self._bump()
        return index

    def drop_index(self, name: str) -> None:
        """Remove an index; raises :class:`CatalogError` if absent."""
        key = name.lower()
        if key not in self._indexes:
            raise CatalogError(
                f"index {name!r} does not exist; known indexes: "
                f"{self.index_names()}")
        index = self._indexes.pop(key)
        self._indexes_by_table[index.table].remove(index)
        self._bump()

    def index_names(self) -> list[str]:
        """All index names, in creation order."""
        return list(self._indexes)

    def get_index(self, name: str) -> SecondaryIndex:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(
                f"index {name!r} does not exist; known indexes: "
                f"{self.index_names()}") from None

    def indexes_on(self, table: str) -> list[SecondaryIndex]:
        """All indexes over *table*, in creation order."""
        return list(self._indexes_by_table.get(table.lower(), ()))

    def index_for(self, table: str, column: str,
                  kinds: Sequence[str] | None = None
                  ) -> SecondaryIndex | None:
        """An index usable for lookups on ``table.column``, or None.

        *kinds* restricts (and orders) the acceptable index kinds — e.g.
        ``("sorted",)`` for a range scan; by default any kind matches,
        hash preferred (cheapest equality probe).
        """
        matches = [index for index in self.indexes_on(table)
                   if index.column == column.lower()]
        for kind in kinds or ("hash", "sorted"):
            for index in matches:
                if index.kind == kind:
                    return index
        return None

    def has_unique_index(self, table: str, column: str) -> bool:
        """True iff some index declares ``table.column`` unique."""
        return any(index.unique for index in self.indexes_on(table)
                   if index.column == column.lower())

    # -- DML maintenance hooks -------------------------------------------------

    def note_insert(self, table: str, rows: Iterable[Sequence[Any]],
                    indexes: list[SecondaryIndex] | None = None) -> None:
        """Maintain *table*'s indexes after rows were inserted.

        On a unique violation the row is backed out of the indexes that
        already accepted it before the error propagates, so no ghost
        entries survive a rejected insert.  Bulk callers pass the
        pre-resolved *indexes* so per-row calls skip re-resolution.
        """
        if indexes is None:
            indexes = self.indexes_on(table)
        if not indexes:
            return
        for row in rows:
            row = tuple(row)
            updated = []
            try:
                for index in indexes:
                    index.insert(row)
                    updated.append(index)
            except CatalogError:
                for index in updated:
                    index.remove(row)
                raise

    def note_delete(self, table: str, rows: Iterable[tuple]) -> None:
        """Maintain *table*'s indexes after rows were deleted.

        Small deletes remove row by row; bulk deletes (including full
        truncation) rebuild from the remaining rows instead — per-row
        removal from a sorted index is linear per row, so rebuilding is
        the cheaper path once a meaningful fraction of the table goes.
        """
        indexes = self.indexes_on(table)
        if not indexes:
            return
        deleted = rows if isinstance(rows, list) else list(rows)
        remaining = self.get(table).rows
        if len(deleted) > 16 and len(deleted) * 4 >= len(remaining):
            for index in indexes:
                index.build(remaining)
            return
        for row in deleted:
            for index in indexes:
                index.remove(row)

    # -- statistics ------------------------------------------------------------

    def analyze(self, name: str | None = None) -> list[str]:
        """Collect statistics for one table (or all); returns the names
        analyzed.  Bumps the statistics generation, invalidating cached
        plans that were costed against the old numbers."""
        names = [name.lower()] if name is not None else self.names()
        for table in names:
            self.stats.put(table, analyze_relation(table, self.get(table)))
        return names
