"""The catalog: the set of named base relations a query can reference.

The provenance rewriter needs to know, for every base-relation access, the
relation's schema — :func:`Catalog.get` is the single lookup point used by
the analyzer and by ``CrossBase`` construction.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from .errors import CatalogError
from .relation import Relation
from .schema import Schema


class Catalog:
    """A mapping from lower-cased table names to :class:`Relation` objects."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self) -> list[str]:
        """All table names, in creation order."""
        return list(self._tables)

    def create(self, name: str, schema: Schema,
               rows: Iterable[Sequence[Any]] = ()) -> Relation:
        """Create a table; raises :class:`CatalogError` if it exists."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Relation(schema, rows)
        self._tables[key] = table
        return table

    def register(self, name: str, relation: Relation,
                 replace: bool = False) -> None:
        """Register an existing :class:`Relation` under *name*."""
        key = name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = relation

    def drop(self, name: str) -> None:
        """Remove a table; raises :class:`CatalogError` if absent."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def get(self, name: str) -> Relation:
        """Look up a table; raises :class:`CatalogError` if absent."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {name!r} does not exist; known tables: "
                f"{self.names()}") from None
