"""The catalog: the set of named base relations a query can reference.

The provenance rewriter needs to know, for every base-relation access, the
relation's schema — :func:`Catalog.get` is the single lookup point used by
the analyzer and by ``CrossBase`` construction.

The catalog also owns **view definitions** (parsed ``SELECT`` statements,
macro-expanded by the analyzer at reference time) and a **generation
counter** (:attr:`Catalog.version`) that is bumped by every DDL change —
table or view creation, replacement and removal.  Cached query plans are
keyed by that counter, so any DDL invalidates them; row-level DML
(INSERT/DELETE) deliberately does *not* bump it, because plans do not
depend on the data.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence, TYPE_CHECKING

from .errors import CatalogError
from .relation import Relation
from .schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from .sql.ast import SelectStmt


class Catalog:
    """A mapping from lower-cased table names to :class:`Relation` objects,
    plus named view definitions and a DDL generation counter."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}
        self._views: dict[str, "SelectStmt"] = {}
        self._version = 0

    # -- versioning -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Generation counter, bumped by every DDL change."""
        return self._version

    def _bump(self) -> None:
        self._version += 1

    # -- tables ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self) -> list[str]:
        """All table names, in creation order."""
        return list(self._tables)

    def create(self, name: str, schema: Schema,
               rows: Iterable[Sequence[Any]] = ()) -> Relation:
        """Create a table; raises :class:`CatalogError` if it exists."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Relation(schema, rows)
        self._tables[key] = table
        self._bump()
        return table

    def register(self, name: str, relation: Relation,
                 replace: bool = False) -> None:
        """Register an existing :class:`Relation` under *name*."""
        key = name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = relation
        self._bump()

    def drop(self, name: str) -> None:
        """Remove a table; raises :class:`CatalogError` if absent."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self._bump()

    def get(self, name: str) -> Relation:
        """Look up a table; raises :class:`CatalogError` if absent."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {name!r} does not exist; known tables: "
                f"{self.names()}") from None

    # -- views ----------------------------------------------------------------

    @property
    def views(self) -> dict[str, "SelectStmt"]:
        """The live view-name -> parsed-SELECT mapping (lower-cased keys).

        The analyzer reads this mapping directly; mutate it only through
        :meth:`create_view` / :meth:`drop_view` so the generation counter
        stays in sync.
        """
        return self._views

    def view_names(self) -> list[str]:
        """All view names, in creation order."""
        return list(self._views)

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def create_view(self, name: str, query: "SelectStmt",
                    replace: bool = True) -> None:
        """Register (or replace) a view defined by a parsed SELECT."""
        key = name.lower()
        if key in self._views and not replace:
            raise CatalogError(f"view {name!r} already exists")
        self._views[key] = query
        self._bump()

    def drop_view(self, name: str) -> None:
        """Remove a view; raises :class:`CatalogError` if absent."""
        key = name.lower()
        if key not in self._views:
            raise CatalogError(f"view {name!r} does not exist")
        del self._views[key]
        self._bump()

    def get_view(self, name: str) -> "SelectStmt":
        """Look up a view definition; raises :class:`CatalogError` if absent."""
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(
                f"view {name!r} does not exist; known views: "
                f"{self.view_names()}") from None
