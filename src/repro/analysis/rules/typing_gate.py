"""The strict typing gate.

``typing-annotations`` — every function and method in the gated
packages (storage, engine, api, client, analysis) must carry complete
parameter and return annotations.  This is the locally-enforced half
of the typing gate: it runs with zero dependencies on every
``python -m repro.analysis`` invocation.  The other half — running
``mypy --strict`` over the same packages against ``mypy.ini`` — needs
mypy installed and is wired into CI via ``--mypy`` (see
:func:`repro.analysis.baseline.run_mypy`); the annotation rule
guarantees the gated surface never regresses to untyped defs even
where mypy is unavailable.

Named nested closures are exempt: the kernel/step closures are
intentionally minimal hot-path functions whose types are fixed by
their factory's signature.
"""

from __future__ import annotations

from . import RuleContext, rule


@rule("typing")
def check_typing(ctx: RuleContext) -> None:
    patterns = ctx.config.typed_modules
    for info in ctx.project.functions.values():
        if info.parent is not None:      # nested closure
            continue
        if not any(info.module.matches(p) for p in patterns):
            continue
        facts = info.facts
        missing: list[str] = []
        if facts.unannotated_params:
            missing.append(
                "parameter(s) " + ", ".join(facts.unannotated_params))
        if not facts.has_return_annotation:
            missing.append("return type")
        if missing:
            ctx.emit(
                "typing-annotations", info.module, info.lineno,
                info.qualname,
                f"missing annotations: {'; '.join(missing)} — the "
                f"gated packages are fully typed (mypy --strict)")
