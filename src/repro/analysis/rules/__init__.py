"""The rule registry and the violation record.

A *rule family* (``lock-discipline``, ``exhaustiveness``, ``purity``,
``hygiene``, ``typing``) is one registered checker function; each
family emits violations under specific ids (``hygiene-pickle``,
``exhaustiveness-wal``, ...) so pragmas and baselines can be precise.
An inline ``# repro: allow(<id-or-prefix>)`` on the offending line, in
the comment block directly above it, or on (or above) the enclosing
``def``/``class`` line suppresses a finding; ``allow(hygiene)``
suppresses the whole family.

Checkers receive a :class:`RuleContext` and call :meth:`RuleContext.emit`
for every finding; pragma filtering and stable ordering are handled
here, so rule modules contain only the invariant logic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Iterable

from ...errors import InterfaceError
from ..callgraph import CallGraph
from ..project import ModuleInfo, Project


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and a human-readable message."""

    path: str
    line: int
    rule: str
    symbol: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching — deliberately excludes
        the line number so unrelated edits above a finding don't turn it
        into a "new" violation."""
        text = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(text.encode()).hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.symbol}: "
                f"{self.message}")


@dataclass
class AnalysisConfig:
    """Knobs the rules read; defaults target the live ``repro`` tree,
    tests override them to point at fixture packages."""

    #: classes whose shared state must only mutate under the write lock
    shared_state_classes: tuple[str, ...] = (
        "Catalog", "PlanCache", "DurableStore")
    #: entry points of code that runs on the forked worker side
    worker_entries: tuple[str, ...] = ("_worker_main",)
    #: commit-section functions: reachable only through a holder of the
    #: per-name commit locks (the table lock manager)
    commit_section_functions: tuple[str, ...] = (
        "validate_commit", "publish_commit")
    #: attribute name of the engine's per-name commit lock manager
    table_lock_attr: str = "table_locks"
    #: entry points of the group-commit WAL flusher thread (must never
    #: touch the catalog or an engine lock: committers block on it)
    flusher_entries: tuple[str, ...] = ("_flush_loop",)
    #: factories whose nested closures are vector kernels
    kernel_factory_prefixes: tuple[str, ...] = ("compile_vector_",)
    #: base class of vectorized operators (methods must stay pure-ish)
    vector_base_class: str = "VectorOperator"
    #: base class of the physical plan nodes
    physical_base_class: str = "PhysicalOperator"
    #: module-level registry naming row-only operators with no vector
    #: equivalent (the explicit fallback list the exhaustiveness rule
    #: accepts instead of a vectorization branch)
    row_fallback_registry: str = "ROW_ONLY_FALLBACK"
    #: module name patterns (top package stripped) whose broad excepts
    #: are commit/recovery/teardown-critical
    critical_modules: tuple[str, ...] = (
        "storage", "storage.*", "api.transaction", "api.connection",
        "api.result", "server.server", "client", "client.*")
    #: root class every library raise must derive from
    error_root_class: str = "ReproError"
    #: builtin exceptions that are always acceptable to raise
    allowed_builtin_raises: tuple[str, ...] = (
        "NotImplementedError", "AssertionError", "StopIteration",
        "StopAsyncIteration", "KeyboardInterrupt", "SystemExit",
        "GeneratorExit")
    #: modules allowed to call ``pickle.loads`` (restricted unpickler)
    pickle_allowed_modules: tuple[str, ...] = ("storage.codec",)
    #: module patterns under the strict annotation gate
    typed_modules: tuple[str, ...] = (
        "storage", "storage.*", "engine", "engine.*", "api", "api.*",
        "client", "client.*", "analysis", "analysis.*")
    #: modules whose raises are held to the error-hierarchy rule
    raise_checked_modules: tuple[str, ...] = (
        "storage", "storage.*", "engine", "engine.*", "api", "api.*",
        "client", "client.*", "server", "server.*", "catalog",
        "relation", "analysis", "analysis.*")

    def replace(self, **overrides: Any) -> "AnalysisConfig":
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(overrides)
        return AnalysisConfig(**values)


@dataclass
class RuleContext:
    """What a checker gets: the loaded project, the call graph, the
    config, and the emit sink (which applies pragma suppression)."""

    project: Project
    graph: CallGraph
    config: AnalysisConfig
    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0

    def emit(self, rule: str, module: ModuleInfo, lineno: int,
             symbol: str, message: str) -> None:
        if self._pragma_allows(module, lineno, rule, symbol):
            self.suppressed += 1
            return
        self.violations.append(Violation(
            path=self.project.relpath(module), line=lineno, rule=rule,
            symbol=symbol, message=message))

    def _pragma_allows(self, module: ModuleInfo, lineno: int, rule: str,
                       symbol: str) -> bool:
        return self.project.allowed(module, lineno, rule, symbol)

    def modules_matching(self, patterns: Iterable[str]
                         ) -> list[ModuleInfo]:
        return [m for m in self.project.modules.values()
                if any(m.matches(p) for p in patterns)]


_REGISTRY: dict[str, Callable[[RuleContext], None]] = {}


def rule(name: str) -> Callable:
    """Register a checker function under a family *name*."""
    def register(fn: Callable[[RuleContext], None]) -> Callable:
        _REGISTRY[name] = fn
        return fn
    return register


def available_rules() -> tuple[str, ...]:
    _load_builtin_rules()
    return tuple(sorted(_REGISTRY))


def run_rules(project: Project, graph: CallGraph,
              config: AnalysisConfig | None = None,
              rules: Iterable[str] | None = None) -> list[Violation]:
    """Run the selected rule families (default: all) and return the
    findings in (path, line, rule) order."""
    _load_builtin_rules()
    ctx = RuleContext(project=project, graph=graph,
                      config=config or AnalysisConfig())
    selected = set(rules) if rules is not None else set(_REGISTRY)
    unknown = selected - set(_REGISTRY)
    if unknown:
        raise InterfaceError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"available: {', '.join(sorted(_REGISTRY))}")
    for name in sorted(selected):
        _REGISTRY[name](ctx)
    return sorted(ctx.violations)


def _load_builtin_rules() -> None:
    from . import exhaustiveness, hygiene, locks, purity, typing_gate  # noqa: F401
