"""Exhaustiveness checks: every tag/message/operator is fully wired.

``exhaustiveness-wal`` — every ``_OP_*`` op code in a WAL module is
referenced by an encode-side function **and** a decode/replay-side
function.  A tag with an encoder but no replay branch writes records
recovery silently drops; the reverse replays garbage.

``exhaustiveness-wire`` — in a protocol module (one defining a
``*_PARSERS`` dispatch table), every message dataclass must define
``encode`` and be reachable from a parse path (the dispatch table, or
a module-level ``*parse*`` function); each message class must also be
exercised by the wire-protocol test file.

``exhaustiveness-physical`` — every concrete physical plan node must
(a) be constructed somewhere (it has a lowering), (b) carry its own
``label`` so EXPLAIN renders a real branch for it, and (c) either run
columnar (a vector operator, or handled by the vectorizer) or appear
in the explicit ``ROW_ONLY_FALLBACK`` registry — an operator in
neither is a silent vectorization hole.
"""

from __future__ import annotations

import ast
import re

from ..project import ClassInfo, ModuleInfo, Project
from . import RuleContext, rule

_OP_CONST = re.compile(r"^_?OP_[A-Z0-9_]+$|^_OP_[A-Z0-9_]+$")


@rule("exhaustiveness")
def check_exhaustiveness(ctx: RuleContext) -> None:
    _check_wal_ops(ctx)
    _check_wire_messages(ctx)
    _check_physical_nodes(ctx)


# -- WAL op codes -------------------------------------------------------------

def _check_wal_ops(ctx: RuleContext) -> None:
    for module in ctx.project.modules.values():
        ops = [name for name in module.constants
               if _OP_CONST.match(name)]
        if len(ops) < 2:
            continue
        encoders: set[str] = set()
        decoders: set[str] = set()
        for info in ctx.project.functions.values():
            if info.module is not module:
                continue
            kind = info.name.lower()
            if "encode" in kind:
                encoders.update(info.facts.name_loads)
            if "decode" in kind or "apply" in kind or "replay" in kind:
                decoders.update(info.facts.name_loads)
        for op in ops:
            node = module.constants[op]
            lineno = getattr(node, "lineno", 1)
            if op not in encoders:
                ctx.emit(
                    "exhaustiveness-wal", module, lineno,
                    f"{module.name}.{op}",
                    f"WAL op {op} has no encode path (no *encode* "
                    f"function references it) — commits carrying it "
                    f"cannot be logged")
            if op not in decoders:
                ctx.emit(
                    "exhaustiveness-wal", module, lineno,
                    f"{module.name}.{op}",
                    f"WAL op {op} has no decode/replay path — recovery "
                    f"would drop or misread records carrying it")


# -- wire messages ------------------------------------------------------------

def _parser_table_names(module: ModuleInfo) -> set[str]:
    """Every Name referenced inside ``*_PARSERS`` dispatch tables."""
    names: set[str] = set()
    for const, value in module.constants.items():
        if not const.endswith("_PARSERS"):
            continue
        for node in ast.walk(value):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _check_wire_messages(ctx: RuleContext) -> None:
    project = ctx.project
    for module in project.modules.values():
        table_names = _parser_table_names(module)
        if not table_names:
            continue
        # parse coverage: classes named in the dispatch tables, plus
        # everything referenced by module-level *parse* functions
        covered = set(table_names)
        for info in project.functions.values():
            if info.module is module and "parse" in info.name.lower():
                covered |= info.facts.name_loads
        test_text = _wire_test_text(project)
        for cls in module.classes.values():
            if not cls.has_decorator("dataclass"):
                continue
            symbol = cls.qualname
            if project.method_resolves(symbol, "encode") is None:
                ctx.emit(
                    "exhaustiveness-wire", module, cls.lineno, symbol,
                    f"wire message {cls.name} defines no encode()")
            if cls.name not in covered:
                ctx.emit(
                    "exhaustiveness-wire", module, cls.lineno, symbol,
                    f"wire message {cls.name} is not reachable from any "
                    f"parse path — a peer sending it would hit 'unknown "
                    f"message'")
            if test_text is not None and cls.name not in test_text:
                ctx.emit(
                    "exhaustiveness-wire", module, cls.lineno, symbol,
                    f"wire message {cls.name} never appears in the "
                    f"wire-protocol test suite")


def _wire_test_text(project: Project) -> str | None:
    path = project.root.parent.parent / "tests" / "test_wire_protocol.py"
    try:
        return path.read_text(encoding="utf-8")
    except OSError:
        return None


# -- physical operators -------------------------------------------------------

def _class_body_assigns(cls: ClassInfo, name: str) -> ast.expr | None:
    for stmt in cls.node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and \
                    stmt.target.id == name:
                return stmt.value
    return None


def _is_bridge(cls: ClassInfo, project: Project) -> bool:
    value = _class_body_assigns(cls, "is_bridge")
    if isinstance(value, ast.Constant):
        return bool(value.value)
    for ancestor in project.ancestors(cls.qualname):
        value = _class_body_assigns(project.classes[ancestor], "is_bridge")
        if isinstance(value, ast.Constant):
            return bool(value.value)
    return False


def _registry_names(project: Project, registry: str) -> tuple[set[str],
                                                              set[str]]:
    """(names listed in the fallback registry, modules defining it)."""
    names: set[str] = set()
    modules: set[str] = set()
    for module in project.modules.values():
        value = module.constants.get(registry)
        if value is None:
            continue
        modules.add(module.name)
        for node in ast.walk(value):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Constant) and \
                    isinstance(node.value, str):
                names.add(node.value)
    return names, modules


def _check_physical_nodes(ctx: RuleContext) -> None:
    project = ctx.project
    base = ctx.config.physical_base_class
    vector_base = ctx.config.vector_base_class
    operators = [cls for cls in project.classes.values()
                 if project.is_subclass_of(cls.qualname, base)]
    if not operators:
        return
    # one pass over every call in the project: which classes are built?
    constructed: set[str] = set()
    for info in project.functions.values():
        for call in info.facts.calls:
            resolved = project.resolve(info.module, call.path)
            if resolved in project.classes:
                constructed.add(resolved)
    fallback_names, registry_modules = _registry_names(
        project, ctx.config.row_fallback_registry)
    # classes the vectorizer handles: every name its modules' vectorize
    # helpers touch
    vectorizer_names: set[str] = set()
    for info in project.functions.values():
        if info.module.name in registry_modules and \
                "vectorize" in info.name.lower():
            vectorizer_names |= info.facts.name_loads
    # classes with project subclasses are abstract bases, not operators
    ancestors_with_subs: set[str] = set()
    for cls in operators:
        ancestors_with_subs.update(project.ancestors(cls.qualname))

    for cls in operators:
        symbol = cls.qualname
        is_abstract = cls.qualname in ancestors_with_subs
        if is_abstract or _is_bridge(cls, project):
            continue
        if cls.qualname not in constructed:
            ctx.emit(
                "exhaustiveness-physical", cls.module, cls.lineno, symbol,
                f"physical node {cls.name} is never constructed — it has "
                f"no lowering path")
        label = project.method_resolves(cls.qualname, "label")
        if label is None or label.class_name == base or (
                label.class_qualname is not None
                and label.class_qualname.rpartition(".")[2] == base):
            ctx.emit(
                "exhaustiveness-physical", cls.module, cls.lineno, symbol,
                f"physical node {cls.name} defines no label() — EXPLAIN "
                f"would fall back to the bare class name")
        if registry_modules and not \
                project.is_subclass_of(cls.qualname, vector_base):
            if cls.name not in vectorizer_names and \
                    cls.name not in fallback_names:
                ctx.emit(
                    "exhaustiveness-physical", cls.module, cls.lineno,
                    symbol,
                    f"row operator {cls.name} is neither handled by the "
                    f"vectorizer nor listed in "
                    f"{ctx.config.row_fallback_registry} — declare the "
                    f"fallback explicitly")
