"""Hygiene checks on the commit/recovery/teardown-critical paths.

``hygiene-bare-except`` — a bare ``except:`` catches ``SystemExit`` and
``KeyboardInterrupt``; nothing in the tree is allowed one.

``hygiene-broad-except`` — ``except Exception``/``except BaseException``
in a *critical module* (storage, transaction/connection/result
lifecycles, server teardown, client teardown) is only acceptable when
the handler re-raises (cleanup-and-propagate) or converts into a
library error; a swallowing broad handler in a commit or recovery path
hides corruption.

``hygiene-raise`` — everything the library raises must derive from
:class:`repro.errors.ReproError` so ``except Error`` keeps its contract;
raising builtins (``ValueError``, ``RuntimeError``) from core modules
leaks untyped failures to DB-API callers.

``hygiene-pickle`` — ``pickle.loads`` deserializes attacker-controlled
bytes into arbitrary code execution; only the restricted unpickler
module may call it.  Trusted same-process IPC uses may opt out with an
inline pragma, which documents the trust boundary in place.
"""

from __future__ import annotations

from ..project import ExceptSite, FunctionInfo, ModuleInfo
from . import RuleContext, rule

_BROAD = frozenset({"Exception", "BaseException"})

#: Builtin exception class names (anything raised by name that is not a
#: project class and appears here is a builtin raise).
_BUILTIN_EXCEPTIONS = frozenset({
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "BlockingIOError", "BrokenPipeError", "BufferError", "BytesWarning",
    "ChildProcessError", "ConnectionAbortedError", "ConnectionError",
    "ConnectionRefusedError", "ConnectionResetError", "EOFError",
    "Exception", "FileExistsError", "FileNotFoundError",
    "FloatingPointError", "GeneratorExit", "IOError", "ImportError",
    "IndentationError", "IndexError", "InterruptedError",
    "IsADirectoryError", "KeyError", "KeyboardInterrupt", "LookupError",
    "MemoryError", "ModuleNotFoundError", "NameError",
    "NotADirectoryError", "NotImplementedError", "OSError",
    "OverflowError", "PermissionError", "ProcessLookupError",
    "RecursionError", "ReferenceError", "RuntimeError", "StopIteration",
    "StopAsyncIteration", "SyntaxError", "SystemError", "SystemExit",
    "TabError", "TimeoutError", "TypeError", "UnboundLocalError",
    "UnicodeDecodeError", "UnicodeEncodeError", "UnicodeError",
    "ValueError", "ZeroDivisionError",
})

#: Dunders in which raising the matching builtin is the protocol.
_PROTOCOL_RAISES = {
    "AttributeError": ("__getattr__", "__getattribute__", "__get__",
                       "__delattr__"),
    "KeyError": ("__getitem__", "__delitem__", "__missing__"),
    "IndexError": ("__getitem__",),
    "TypeError": ("__init_subclass__",),
}


@rule("hygiene")
def check_hygiene(ctx: RuleContext) -> None:
    for info in ctx.project.functions.values():
        _check_excepts(ctx, info)
        _check_raises(ctx, info)
        _check_pickle(ctx, info)


def _converts_to_library_error(ctx: RuleContext, module: ModuleInfo,
                               site: ExceptSite) -> bool:
    for raised in site.raised:
        name = raised.rpartition(".")[2]
        for cls in ctx.project.classes_named(name):
            if ctx.project.is_subclass_of(
                    cls.qualname, ctx.config.error_root_class) or \
                    cls.name == ctx.config.error_root_class:
                return True
        resolved = ctx.project.resolve(module, raised)
        if resolved is not None and "errors" in resolved:
            return True
    return False


def _check_excepts(ctx: RuleContext, info: FunctionInfo) -> None:
    critical = any(info.module.matches(p)
                   for p in ctx.config.critical_modules)
    for site in info.facts.excepts:
        if site.types is None:
            ctx.emit(
                "hygiene-bare-except", info.module, site.lineno,
                info.qualname,
                "bare 'except:' also catches SystemExit and "
                "KeyboardInterrupt; name the exceptions")
            continue
        if not critical:
            continue
        broad = [t for t in site.types
                 if t.rpartition(".")[2] in _BROAD]
        if not broad:
            continue
        if site.reraises:
            continue                     # cleanup-and-propagate
        if _converts_to_library_error(ctx, info.module, site):
            continue                     # convert-and-raise
        ctx.emit(
            "hygiene-broad-except", info.module, site.lineno,
            info.qualname,
            f"'except {broad[0]}' in a commit/recovery/teardown path "
            f"swallows failures; catch the specific exceptions (or "
            f"re-raise after cleanup)")


def _check_raises(ctx: RuleContext, info: FunctionInfo) -> None:
    if not any(info.module.matches(p)
               for p in ctx.config.raise_checked_modules):
        return
    allowed = set(ctx.config.allowed_builtin_raises)
    for site in info.facts.raises:
        if site.name is None:
            continue                     # bare re-raise / variable
        name = site.name.rpartition(".")[2]
        if name in allowed:
            continue
        if info.name in _PROTOCOL_RAISES.get(name, ()):
            continue
        if name in _BUILTIN_EXCEPTIONS and \
                not ctx.project.classes_named(name):
            ctx.emit(
                "hygiene-raise", info.module, site.lineno, info.qualname,
                f"raises builtin {name}; library errors must derive "
                f"from {ctx.config.error_root_class} so 'except Error' "
                f"catches everything")
            continue
        classes = ctx.project.classes_named(name)
        root = ctx.config.error_root_class
        if classes and not any(
                cls.name == root
                or ctx.project.is_subclass_of(cls.qualname, root)
                for cls in classes):
            ctx.emit(
                "hygiene-raise", info.module, site.lineno, info.qualname,
                f"raises {name}, which does not derive from {root}")


def _check_pickle(ctx: RuleContext, info: FunctionInfo) -> None:
    if any(info.module.matches(p)
           for p in ctx.config.pickle_allowed_modules):
        return
    for call in info.facts.calls:
        if call.path in ("pickle.loads", "pickle.load",
                         "pickle.Unpickler"):
            ctx.emit(
                "hygiene-pickle", info.module, call.lineno, info.qualname,
                f"calls {call.path} outside the restricted unpickler; "
                f"untrusted bytes here are remote code execution")
