"""Kernel and worker purity (the PR-7/PR-8 invariants).

``purity-kernel`` — the closures built by the vector-kernel factories
(``compile_vector_*``) are captured into physical plans, cached in the
engine-wide plan cache, and shipped to forked workers; they run once
per batch on hot paths.  They must therefore be *pure over their
inputs*: no ``global`` writes, no lock acquisition, no file or OS
calls, no reads of module-level mutable state.

``purity-worker`` — code reachable from the forked worker entry points
runs in a child process whose view of the parent's heap is a frozen
copy.  Touching the parent's ``Engine``/``DurableStore`` objects, the
worker pool itself, or writing module globals there is either a silent
no-op or a corruption hazard, so all of it is flagged.  (Lock and
fsync reachability across the fork is ``lock-fork``'s job.)

``purity-operator`` — vectorized operator methods may drive their
children through ``self.engine.pull`` but must not take locks or write
module globals; an operator that does so breaks the leased-instance
concurrency model.
"""

from __future__ import annotations

from ..project import FunctionInfo
from . import RuleContext, rule
from .locks import acquires_any_lock

#: OS-level calls a kernel has no business making.
_OS_CALLS = frozenset({
    "open", "print", "input", "exec", "eval", "compile",
})
_OS_MODULES = ("os.", "sys.", "io.", "socket.", "subprocess.",
               "threading.", "multiprocessing.")

#: Parent-side classes/factories worker code must not touch.
_PARENT_ONLY = frozenset({
    "Engine", "DurableStore", "WorkerPool", "get_pool", "shutdown_pool",
})


def _kernel_closures(ctx: RuleContext) -> list[FunctionInfo]:
    """Named closures nested (at any depth) inside a kernel factory."""
    prefixes = ctx.config.kernel_factory_prefixes
    kernels = []
    for info in ctx.project.functions.values():
        parent = info.parent
        while parent is not None:
            parent_info = ctx.project.functions.get(parent)
            if parent_info is None:
                break
            if any(parent_info.name.startswith(p) for p in prefixes):
                kernels.append(info)
                break
            parent = parent_info.parent
    return kernels


@rule("purity")
def check_purity(ctx: RuleContext) -> None:
    _check_kernels(ctx)
    _check_worker_side(ctx)
    _check_vector_operators(ctx)


def _check_kernels(ctx: RuleContext) -> None:
    for info in _kernel_closures(ctx):
        facts = info.facts
        if facts.global_writes:
            ctx.emit(
                "purity-kernel", info.module, info.lineno, info.qualname,
                f"vector kernel writes module global(s) "
                f"{', '.join(sorted(facts.global_writes))} — kernels are "
                f"shared across sessions and forked workers")
        for call in facts.calls:
            if call.path in _OS_CALLS or \
                    any(call.path.startswith(m) for m in _OS_MODULES):
                ctx.emit(
                    "purity-kernel", info.module, call.lineno,
                    info.qualname,
                    f"vector kernel calls '{call.path}' — kernels must "
                    f"stay pure over their column inputs")
        if acquires_any_lock(info):
            ctx.emit(
                "purity-kernel", info.module, info.lineno, info.qualname,
                "vector kernel acquires a lock — kernels run on hot "
                "per-batch paths and inside forked workers")
        mutable = facts.name_loads & info.module.mutable_globals
        if mutable:
            ctx.emit(
                "purity-kernel", info.module, info.lineno, info.qualname,
                f"vector kernel reads module-level mutable state "
                f"({', '.join(sorted(mutable))})")


def _check_worker_side(ctx: RuleContext) -> None:
    project = ctx.project
    worker_roots = [info.qualname for info in project.functions.values()
                    if info.name in ctx.config.worker_entries]
    if not worker_roots:
        return
    for qualname in sorted(ctx.graph.reachable(worker_roots)):
        info = project.functions[qualname]
        facts = info.facts
        if facts.global_writes:
            ctx.emit(
                "purity-worker", info.module, info.lineno, qualname,
                f"worker-side code writes module global(s) "
                f"{', '.join(sorted(facts.global_writes))} — invisible "
                f"to the parent and lost on respawn")
        for call in facts.calls:
            if call.root == "self" and ".engine." in f".{call.path}.":
                ctx.emit(
                    "purity-worker", info.module, call.lineno, qualname,
                    f"worker-side code touches '{call.path}' — the "
                    f"parent Engine must never be driven from a fork")
            terminal = call.terminal
            if terminal in _PARENT_ONLY:
                resolved = project.resolve(info.module, call.path)
                if resolved is None or resolved.rpartition(".")[2] \
                        in _PARENT_ONLY:
                    ctx.emit(
                        "purity-worker", info.module, call.lineno,
                        qualname,
                        f"worker-side code calls '{call.path}' — "
                        f"parent-only machinery")


def _check_vector_operators(ctx: RuleContext) -> None:
    project = ctx.project
    base = ctx.config.vector_base_class
    for cls in project.classes.values():
        if not project.is_subclass_of(cls.qualname, base):
            continue
        for method in cls.methods.values():
            if acquires_any_lock(method):
                ctx.emit(
                    "purity-operator", method.module, method.lineno,
                    method.qualname,
                    "vectorized operator method acquires a lock — "
                    "operators rely on exclusive leased instances, not "
                    "locking")
            if method.facts.global_writes:
                ctx.emit(
                    "purity-operator", method.module, method.lineno,
                    method.qualname,
                    f"vectorized operator method writes module "
                    f"global(s) "
                    f"{', '.join(sorted(method.facts.global_writes))}")
