"""Lock-discipline checks (the PR-4/PR-8 invariants).

``lock-discipline`` — *shared-state mutations happen under the write
lock.*  The shared classes (``Catalog``, ``PlanCache``,
``DurableStore``) are scanned for **mutator methods** — methods that
assign ``self`` state or call a mutating container method on it —
excluding ``__init__`` and methods that take an internal lock
themselves.  Every call site whose receiver is *engine-owned shared
state* (a path through ``engine.catalog`` / ``engine.plan_cache`` /
``engine.storage``, the same attributes on ``self`` inside ``Engine``,
or a parameter annotated with a shared class) must then be
**write-protected**: the enclosing function either acquires a
write-side lock itself, or cannot be reached from any entry point
without passing through a function that does.

``lock-fork`` — *no lock or fsync on the forked worker side.*  A lock
acquired in the parent may be held by a thread that does not survive
``fork``; a child that then acquires it deadlocks forever, and a child
that fsyncs the parent's WAL fd corrupts commit ordering.  Everything
reachable from the worker entry points (``_worker_main``) is checked
for lock acquisition, ``os.fork`` and ``os.fsync``.

``lock-tables`` — *the commit section runs under the per-name commit
locks* (the PR-10 invariant).  ``validate_commit`` and
``publish_commit`` mutate or judge live-catalog entries named by a
transaction's conflict set; a path into them that does not pass
through a ``table_locks.acquire(...)`` holder would let two commits
interleave on the same table.

``lock-flusher`` — *the group-commit flusher owns only the WAL tail.*
Committers block on the flusher thread while holding their commit
locks, so anything reachable from ``_flush_loop`` that touches the
catalog or takes an engine lock is a deadlock or a data race by
construction.
"""

from __future__ import annotations

import ast

from ..callgraph import CallGraph
from ..project import CallSite, FunctionInfo, Project, dotted_path
from . import RuleContext, rule

#: Container/attr method names that mutate their receiver.
MUTATING_TERMINALS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end", "write",
    "writelines", "truncate",
})

#: Terminal call names that acquire the write side of a lock.
_WRITE_ACQUIRE_TERMINALS = frozenset({
    "acquire_write", "exclusive", "write"})
_READ_ACQUIRE_TERMINALS = frozenset({"acquire_read", "read"})

#: Attributes of an engine that *are* the shared state.
_SHARED_ENGINE_ATTRS = ("catalog", "plan_cache", "storage")


def _lockish(path: str) -> bool:
    return "lock" in path.lower() or "cond" in path.lower()


def acquires_write_lock(info: FunctionInfo) -> bool:
    """Whether the function body takes a write-side (or plain mutual
    exclusion) lock: ``with ...lock.write()``, ``with ...exclusive()``,
    ``with self._lock:``, or an explicit ``acquire_write()`` call."""
    for item in info.facts.with_items:
        terminal = item.path.rpartition(".")[2]
        if item.is_call:
            if terminal == "exclusive" or terminal == "acquire_write":
                return True
            if terminal == "write" and _lockish(item.path):
                return True
        elif _lockish(item.path):
            return True                  # with self._lock:
    for call in info.facts.calls:
        if call.terminal == "acquire_write":
            return True
        if call.terminal == "acquire" and _lockish(call.path):
            return True
    return False


def acquires_any_lock(info: FunctionInfo) -> bool:
    """Whether the function takes any lock side — used by the fork rule,
    where even a read acquisition can deadlock the child."""
    if acquires_write_lock(info):
        return True
    for item in info.facts.with_items:
        terminal = item.path.rpartition(".")[2]
        if item.is_call and terminal in _READ_ACQUIRE_TERMINALS \
                and _lockish(item.path):
            return True
    for call in info.facts.calls:
        if call.terminal == "acquire_read":
            return True
    return False


def shared_mutator_methods(ctx: RuleContext) -> dict[str, set[str]]:
    """Mutator method *names* per shared class name.

    A method mutates if it assigns ``self`` attributes or calls a
    mutating container method on one.  ``__init__``/``__post_init__``
    run before the object is shared, and a method that takes an
    internal lock is self-protected — both are excluded.
    """
    mutators: dict[str, set[str]] = {}
    for class_name in ctx.config.shared_state_classes:
        names: set[str] = set()
        for cls in ctx.project.classes_named(class_name):
            for method in cls.methods.values():
                if method.name in ("__init__", "__post_init__"):
                    continue
                if acquires_write_lock(method):
                    continue             # internally locked
                mutates = bool(method.facts.self_writes)
                if not mutates:
                    mutates = any(
                        call.root == "self"
                        and call.terminal in MUTATING_TERMINALS
                        and call.path.count(".") >= 2
                        for call in method.facts.calls)
                if mutates:
                    names.add(method.name)
        if names:
            mutators[class_name] = names
    return mutators


def _expand_alias(info: FunctionInfo, path: str) -> str:
    """One alias hop: ``storage.append_commit`` becomes
    ``self.engine.storage.append_commit`` when the body assigned
    ``storage = self.engine.storage``."""
    root, dot, rest = path.partition(".")
    target = info.facts.local_aliases.get(root)
    if target is not None and dot:
        return f"{target}.{rest}"
    return path


def _annotated_params(info: FunctionInfo, project: Project,
                      class_names: frozenset[str]) -> set[str]:
    """Parameter names of *info* annotated with one of *class_names*."""
    matches: set[str] = set()
    args = info.node.args
    for arg in list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs):
        if arg.annotation is None:
            continue
        annotation = arg.annotation
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            name = annotation.value.strip("'\" ")
        else:
            name = dotted_path(annotation) or ""
        if name.rpartition(".")[2] in class_names:
            matches.add(arg.arg)
    return matches


def _shared_receiver(info: FunctionInfo, call: CallSite, path: str,
                     shared_params: set[str]) -> bool:
    """Whether the (alias-expanded) call *path* addresses engine-owned
    shared state."""
    segments = path.split(".")
    if len(segments) < 2:
        return False
    receiver = segments[:-1]
    for i, segment in enumerate(receiver[:-1]):
        if segment == "engine" and receiver[i + 1] in _SHARED_ENGINE_ATTRS:
            return True
    if receiver[0] == "self" and len(receiver) >= 2 \
            and receiver[1] in _SHARED_ENGINE_ATTRS \
            and info.class_name is not None \
            and info.class_name.rpartition(".")[2] == "Engine":
        return True
    if receiver[0] in shared_params:
        return True
    return False


def acquires_table_locks(info: FunctionInfo, attr: str) -> bool:
    """Whether the function takes the per-name commit locks:
    ``with ...<attr>.acquire(keys):`` (or a bare ``.acquire()`` call on
    the manager)."""
    needle = f"{attr}."
    for item in info.facts.with_items:
        if item.is_call and item.path.rpartition(".")[2] == "acquire" \
                and needle in item.path:
            return True
    for call in info.facts.calls:
        if call.terminal == "acquire" and needle in call.path:
            return True
    return False


@rule("lock-discipline")
def check_lock_discipline(ctx: RuleContext) -> None:
    project, graph = ctx.project, ctx.graph
    _check_fork_side(ctx, graph)
    _check_commit_section(ctx, graph)
    _check_flusher_side(ctx, graph)
    mutators = shared_mutator_methods(ctx)
    if not mutators:
        return
    mutator_names = frozenset().union(*mutators.values())
    class_names = frozenset(mutators)

    acquirers = frozenset(
        qualname for qualname, info in project.functions.items()
        if acquires_write_lock(info))
    entries = [e for e in graph.entry_points() if e not in acquirers]

    def protected(qualname: str) -> bool:
        if qualname in acquirers:
            return True
        return not any(
            graph.reaches_avoiding(entry, qualname, acquirers)
            for entry in entries)

    for info in project.functions.values():
        shared_params = _annotated_params(info, project, class_names)
        for call in info.facts.calls:
            if call.terminal not in mutator_names:
                continue
            path = _expand_alias(info, call.path)
            if not _shared_receiver(info, call, path, shared_params):
                continue
            if protected(info.qualname):
                continue
            ctx.emit(
                "lock-discipline", info.module, call.lineno,
                info.qualname,
                f"mutates shared state via '{path}' but is reachable "
                f"without the engine write lock; wrap the call path in "
                f"'with engine.lock.write():' (or take it in a caller)")


def _check_commit_section(ctx: RuleContext, graph: CallGraph) -> None:
    """``lock-tables``: the validate/publish half of a commit must be
    unreachable except through a holder of the per-name commit locks."""
    project = ctx.project
    attr = ctx.config.table_lock_attr
    targets = [info for info in project.functions.values()
               if info.name in ctx.config.commit_section_functions]
    if not targets:
        return
    acquirers = frozenset(
        qualname for qualname, info in project.functions.items()
        if acquires_table_locks(info, attr))
    entries = [e for e in graph.entry_points() if e not in acquirers]
    for info in targets:
        if info.qualname in acquirers:
            continue
        if any(graph.reaches_avoiding(entry, info.qualname, acquirers)
               for entry in entries):
            ctx.emit(
                "lock-tables", info.module, info.lineno, info.qualname,
                f"commit-section function is reachable without the "
                f"per-name commit locks; every path into it must pass "
                f"through 'with engine.{attr}.acquire(diff.lock_keys):'")


def _check_flusher_side(ctx: RuleContext, graph: CallGraph) -> None:
    """``lock-flusher``: nothing reachable from the group-commit
    flusher thread may touch the catalog or take an engine lock —
    committers block on the flusher while holding their commit locks."""
    project = ctx.project
    flusher_roots = [
        info.qualname for info in project.functions.values()
        if info.name in ctx.config.flusher_entries]
    if not flusher_roots:
        return
    shared = frozenset(ctx.config.shared_state_classes) - \
        frozenset({"DurableStore"})     # the flusher lives *in* the store
    for qualname in sorted(graph.reachable(flusher_roots)):
        info = project.functions[qualname]
        if _annotated_params(info, project, shared):
            ctx.emit(
                "lock-flusher", info.module, info.lineno, qualname,
                "declares a Catalog/PlanCache parameter on the flusher "
                "side; the flusher owns only the WAL tail — catalog "
                "state belongs to committers under their commit locks")
        for call in info.facts.calls:
            path = _expand_alias(info, call.path)
            receiver = path.split(".")[:-1]
            if "catalog" in receiver:
                ctx.emit(
                    "lock-flusher", info.module, call.lineno, qualname,
                    f"touches the catalog via '{path}' from the "
                    f"group-commit flusher thread; committers block on "
                    f"the flusher while holding their commit locks, so "
                    f"this is a data race (or a deadlock) by "
                    f"construction")
            if "engine" in receiver and _lockish(path):
                ctx.emit(
                    "lock-flusher", info.module, call.lineno, qualname,
                    f"takes an engine lock via '{path}' from the "
                    f"group-commit flusher thread — a committer "
                    f"blocked on the flusher may hold it: deadlock")


def _check_fork_side(ctx: RuleContext, graph: CallGraph) -> None:
    project = ctx.project
    worker_roots = [
        info.qualname for info in project.functions.values()
        if info.name in ctx.config.worker_entries]
    if not worker_roots:
        return
    for qualname in sorted(graph.reachable(worker_roots)):
        info = project.functions[qualname]
        if acquires_any_lock(info):
            ctx.emit(
                "lock-fork", info.module, info.lineno, qualname,
                "acquires a lock on the forked worker side; a lock held "
                "by a parent thread at fork() deadlocks the child "
                "forever")
        for call in info.facts.calls:
            resolved = project.resolve(info.module, call.path) \
                or call.path
            if resolved in ("os.fsync", "os.fdatasync"):
                ctx.emit(
                    "lock-fork", info.module, call.lineno, qualname,
                    f"calls {resolved} on the forked worker side; "
                    f"workers must never sync the parent's WAL fds")
            if resolved == "os.fork":
                ctx.emit(
                    "lock-fork", info.module, call.lineno, qualname,
                    "forks from worker-side code; only the parent pool "
                    "may spawn workers")
