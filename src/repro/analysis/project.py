"""Package loading, symbol tables and per-function fact extraction.

:class:`Project.load` walks a package directory, parses every module
with :mod:`ast`, and builds the three symbol tables the rules and the
call graph work from:

* ``modules`` — per-module import alias maps, module-level constants,
  mutable-global detection and ``# repro: allow(...)`` pragma lines;
* ``classes`` — qualified class names with (resolved) base classes and
  their method tables, plus a transitive subclass index;
* ``functions`` — every function, method and *named nested function*
  in the tree, each carrying a :class:`FunctionFacts` block: raw dotted
  call paths, ``with`` context paths, raise/except structure, ``self``
  attribute writes, ``global`` declarations and annotation coverage.

Name resolution is deliberately best-effort: a dotted path is resolved
through the module's import aliases and top-level definitions to a
project-qualified name when possible, and left raw otherwise.  The
rules are written so unresolved names degrade to (documented)
conservatism, never to crashes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

_PRAGMA = re.compile(r"#\s*repro:\s*allow\(([^)]+)\)")

#: Module-level assignments of these shapes are recorded as *mutable
#: globals* — state the purity rules refuse to let kernels touch.
_MUTABLE_CALLS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "WeakSet", "WeakValueDictionary", "Counter",
}


@dataclass(frozen=True)
class CallSite:
    """One call expression: the dotted path as written, and its line."""

    path: str
    lineno: int

    @property
    def terminal(self) -> str:
        return self.path.rpartition(".")[2]

    @property
    def root(self) -> str:
        return self.path.partition(".")[0]


@dataclass(frozen=True)
class WithItem:
    """One ``with`` context expression (dotted paths only)."""

    path: str
    lineno: int
    is_call: bool


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement; *name* is the dotted path of the raised
    class/callable, or None for a bare re-raise or a non-name value."""

    name: str | None
    lineno: int


@dataclass(frozen=True)
class ExceptSite:
    """One ``except`` handler.

    *types* holds the dotted paths of the caught classes (None for a
    bare ``except:``), *reraises* whether the handler body contains a
    bare ``raise``, and *raised* the dotted names of exceptions the
    handler raises itself (the convert-and-raise pattern).
    """

    types: tuple[str, ...] | None
    lineno: int
    reraises: bool
    raised: tuple[str, ...]


@dataclass
class FunctionFacts:
    """Everything the rules need to know about one function body."""

    calls: list[CallSite] = field(default_factory=list)
    with_items: list[WithItem] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)
    excepts: list[ExceptSite] = field(default_factory=list)
    #: first-level attribute names assigned on ``self`` (including
    #: subscript/augmented stores through a ``self`` attribute)
    self_writes: set[str] = field(default_factory=set)
    #: names declared ``global`` and assigned in this body
    global_writes: set[str] = field(default_factory=set)
    #: bare names read (for mutable-global detection)
    name_loads: set[str] = field(default_factory=set)
    #: one-hop local aliases: ``storage = self.engine.storage`` lets a
    #: later ``storage.append_commit(...)`` resolve its real receiver
    local_aliases: dict[str, str] = field(default_factory=dict)
    #: parameters lacking annotations (``self``/``cls`` excluded)
    unannotated_params: tuple[str, ...] = ()
    has_return_annotation: bool = True


@dataclass
class FunctionInfo:
    """A function, method or named nested function."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    class_name: str | None = None       # enclosing class, if a method
    parent: str | None = None           # enclosing function's qualname
    decorators: tuple[str, ...] = ()
    facts: FunctionFacts = field(default_factory=FunctionFacts)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def class_qualname(self) -> str | None:
        if self.class_name is None:
            return None
        return f"{self.module.name}.{self.class_name}"


@dataclass
class ClassInfo:
    """A class definition with its (raw and resolved) bases."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    lineno: int
    bases: tuple[str, ...] = ()          # dotted paths as written
    resolved_bases: tuple[str, ...] = () # project-qualified where possible
    decorators: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def has_decorator(self, name: str) -> bool:
        return any(dec.rpartition(".")[2] == name for dec in self.decorators)


@dataclass
class ModuleInfo:
    """One parsed module with its local symbol table."""

    name: str
    path: Path
    node: ast.Module
    source_lines: list[str]
    #: line number -> set of rule names allowed by an inline pragma
    pragmas: dict[int, set[str]] = field(default_factory=dict)
    #: local alias -> qualified name (``from ..catalog import Catalog``
    #: in ``repro.api.engine`` maps ``Catalog -> repro.catalog.Catalog``)
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = <int/str literal>`` assignments
    constants: dict[str, ast.expr] = field(default_factory=dict)
    #: module-level names bound to mutable containers
    mutable_globals: set[str] = field(default_factory=set)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def matches(self, pattern: str) -> bool:
        """fnmatch-style *pattern* test against the module name with the
        top package stripped, so rules written for ``repro`` apply to
        test fixture packages unchanged."""
        import fnmatch
        bare = self.name.partition(".")[2] or self.name
        return fnmatch.fnmatch(bare, pattern) or \
            fnmatch.fnmatch(self.name, pattern)


def dotted_path(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FactVisitor(ast.NodeVisitor):
    """Collects :class:`FunctionFacts` for one function body, without
    descending into nested function/class definitions (those get their
    own :class:`FunctionInfo`)."""

    def __init__(self, facts: FunctionFacts) -> None:
        self.facts = facts

    # -- boundaries -----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass                             # separate FunctionInfo

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.generic_visit(node)         # lambda bodies count as the parent

    # -- facts ----------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        path = dotted_path(node.func)
        if path is not None:
            self.facts.calls.append(CallSite(path, node.lineno))
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                path = dotted_path(expr.func)
                if path is not None:
                    self.facts.with_items.append(
                        WithItem(path, expr.lineno, True))
            else:
                path = dotted_path(expr)
                if path is not None:
                    self.facts.with_items.append(
                        WithItem(path, expr.lineno, False))
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        name: str | None = None
        if node.exc is not None:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_path(target)
        self.facts.raises.append(RaiseSite(name, node.lineno))
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            types: tuple[str, ...] | None
            if handler.type is None:
                types = None
            elif isinstance(handler.type, ast.Tuple):
                types = tuple(p for p in (dotted_path(el)
                                          for el in handler.type.elts)
                              if p is not None)
            else:
                path = dotted_path(handler.type)
                types = (path,) if path is not None else ()
            reraises = False
            raised: list[str] = []
            for sub in ast.walk(handler):
                if isinstance(sub, ast.Raise):
                    if sub.exc is None:
                        reraises = True
                    else:
                        target = sub.exc
                        if isinstance(target, ast.Call):
                            target = target.func
                        path = dotted_path(target)
                        if path is not None:
                            raised.append(path)
            self.facts.excepts.append(ExceptSite(
                types, handler.lineno, reraises, tuple(raised)))
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.facts.global_writes.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._store(target)
        if len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            value = dotted_path(node.value)
            if value is not None and "." in value:
                self.facts.local_aliases[node.targets[0].id] = value
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._store(node.target)
        self.generic_visit(node)

    def _store(self, target: ast.expr) -> None:
        # self.x = ..., self.x[k] = ..., self.x.y = ... all record "x"
        while isinstance(target, ast.Subscript):
            target = target.value
        path = dotted_path(target)
        if path is not None and "." in path and path.startswith("self."):
            self.facts.self_writes.add(path.split(".")[1])

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.facts.name_loads.add(node.id)


def _annotation_facts(node: ast.FunctionDef | ast.AsyncFunctionDef
                      ) -> tuple[tuple[str, ...], bool]:
    """Unannotated parameter names (self/cls excluded) and whether the
    function declares a return annotation."""
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    missing: list[str] = []
    for i, arg in enumerate(ordered):
        if i == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return tuple(missing), node.returns is not None


class Project:
    """A loaded package tree: modules, classes, functions, resolution."""

    def __init__(self, package: str, root: Path) -> None:
        self.package = package
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.subclasses: dict[str, set[str]] = {}

    # -- loading --------------------------------------------------------------

    @classmethod
    def load(cls, root: "Path | str") -> "Project":
        """Parse every ``*.py`` under *root* (a package directory)."""
        root = Path(root).resolve()
        project = cls(root.name, root)
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            parts = (root.name,) + rel.parts[:-1]
            if rel.name != "__init__.py":
                parts = parts + (rel.stem,)
            project._load_module(".".join(parts), path)
        project._link()
        return project

    def _load_module(self, name: str, path: Path) -> None:
        source = path.read_text(encoding="utf-8")
        node = ast.parse(source, filename=str(path))
        module = ModuleInfo(name=name, path=path, node=node,
                            source_lines=source.splitlines())
        for lineno, line in enumerate(module.source_lines, 1):
            match = _PRAGMA.search(line)
            if match:
                rules = {part.strip() for part
                         in re.split(r"[,\s]+", match.group(1)) if part}
                module.pragmas[lineno] = rules
        self._scan_imports(module)
        self._scan_toplevel(module)
        self.modules[name] = module

    def _scan_imports(self, module: ModuleInfo) -> None:
        for stmt in ast.walk(module.node):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.partition(".")[0]
                    module.imports[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(module, stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}" \
                        if base else alias.name

    def _import_base(self, module: ModuleInfo,
                     stmt: ast.ImportFrom) -> str:
        if not stmt.level:
            return stmt.module or ""
        # relative import: walk up from the module's package
        parts = module.name.split(".")
        if module.path.name != "__init__.py":
            parts = parts[:-1]           # the containing package
        parts = parts[:len(parts) - (stmt.level - 1)]
        if stmt.module:
            parts.append(stmt.module)
        return ".".join(parts)

    def _scan_toplevel(self, module: ModuleInfo) -> None:
        for stmt in module.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, class_name=None,
                                   parent=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.constants[target.id] = stmt.value
                        if self._is_mutable(stmt.value):
                            module.mutable_globals.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    module.constants[stmt.target.id] = stmt.value
                    if self._is_mutable(stmt.value):
                        module.mutable_globals.add(stmt.target.id)

    @staticmethod
    def _is_mutable(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            path = dotted_path(value.func)
            if path is not None and \
                    path.rpartition(".")[2] in _MUTABLE_CALLS:
                return True
        return False

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        bases = tuple(p for p in (dotted_path(b) for b in node.bases)
                      if p is not None)
        decorators = tuple(
            p for p in (dotted_path(d.func if isinstance(d, ast.Call)
                                    else d)
                        for d in node.decorator_list)
            if p is not None)
        info = ClassInfo(qualname=qualname, name=node.name, module=module,
                         node=node, lineno=node.lineno, bases=bases,
                         decorators=decorators)
        module.classes[node.name] = info
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._add_function(module, stmt,
                                            class_name=node.name,
                                            parent=None)
                info.methods[stmt.name] = method
            elif isinstance(stmt, ast.ClassDef):
                # one level of class nesting (RWLock._Guard)
                self._add_class(module, _prefixed(stmt, node.name))

    def _add_function(self, module: ModuleInfo,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      class_name: str | None,
                      parent: str | None) -> FunctionInfo:
        scope = f"{module.name}.{class_name}" if class_name else module.name
        qualname = f"{parent}.{node.name}" if parent \
            else f"{scope}.{node.name}"
        facts = FunctionFacts()
        visitor = _FactVisitor(facts)
        for stmt in node.body:
            visitor.visit(stmt)
        facts.unannotated_params, facts.has_return_annotation = \
            _annotation_facts(node)
        decorators = tuple(
            p for p in (dotted_path(d.func if isinstance(d, ast.Call)
                                    else d)
                        for d in node.decorator_list)
            if p is not None)
        info = FunctionInfo(qualname=qualname, name=node.name,
                            module=module, node=node, lineno=node.lineno,
                            class_name=class_name, parent=parent,
                            decorators=decorators, facts=facts)
        self.functions[qualname] = info
        if class_name is None and parent is None:
            module.functions[node.name] = info
        if class_name is not None:
            self.methods_by_name.setdefault(node.name, []).append(info)
        # named nested functions become their own nodes, with an
        # implicit parent -> child call edge added by the call graph
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and self._direct_child(node, stmt):
                self._add_function(module, stmt, class_name=class_name,
                                   parent=qualname)
        return info

    @staticmethod
    def _direct_child(outer: ast.AST, inner: ast.AST) -> bool:
        """Whether *inner* is defined directly in *outer*'s body (not in
        a further nested function/class)."""
        stack: list[ast.AST] = [outer]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if child is inner:
                    return node is outer or not isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef))
                if not isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                    stack.append(child)
        # not found directly: inner lives in a nested def, which will
        # register it when its own subtree is walked
        return False

    def _link(self) -> None:
        """Resolve class bases and build the transitive subclass index."""
        for info in self.classes.values():
            resolved = []
            for base in info.bases:
                target = self.resolve(info.module, base)
                resolved.append(target if target is not None else base)
            info.resolved_bases = tuple(resolved)
        for info in self.classes.values():
            for ancestor in self.ancestors(info.qualname):
                self.subclasses.setdefault(ancestor, set()).add(
                    info.qualname)

    # -- resolution -----------------------------------------------------------

    def resolve(self, module: ModuleInfo, path: str) -> str | None:
        """Best-effort project-qualified name for dotted *path* as seen
        from *module*; None when the root name is unknown."""
        root, _, rest = path.partition(".")
        if root in ("self", "cls"):
            return None
        target: str | None = None
        if root in module.imports:
            target = module.imports[root]
        elif root in module.classes or root in module.functions \
                or root in module.constants:
            target = f"{module.name}.{root}"
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def ancestors(self, class_qualname: str) -> Iterator[str]:
        """Transitive resolved base classes of *class_qualname* that are
        defined in the project."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = self.classes.get(stack.pop())
            if current is None:
                continue
            for base in current.resolved_bases:
                if base in self.classes and base not in seen:
                    seen.add(base)
                    stack.append(base)
                    yield base

    def is_subclass_of(self, class_qualname: str, base_name: str) -> bool:
        """Whether the class derives (transitively) from a project class
        whose qualified name — or bare class name — is *base_name*."""
        for ancestor in self.ancestors(class_qualname):
            if ancestor == base_name or \
                    ancestor.rpartition(".")[2] == base_name:
                return True
        return False

    def classes_named(self, name: str) -> list[ClassInfo]:
        return [c for c in self.classes.values() if c.name == name]

    def method_resolves(self, class_qualname: str, method: str
                        ) -> FunctionInfo | None:
        """The method as Python would resolve it: the class itself, then
        its project ancestors in discovery order."""
        info = self.classes.get(class_qualname)
        if info is not None and method in info.methods:
            return info.methods[method]
        for ancestor in self.ancestors(class_qualname):
            ancestor_info = self.classes[ancestor]
            if method in ancestor_info.methods:
                return ancestor_info.methods[method]
        return None

    # -- pragmas --------------------------------------------------------------

    def allowed(self, module: ModuleInfo, lineno: int, rule: str,
                symbol: str | None = None) -> bool:
        """Whether *rule* is suppressed at *lineno* — by a pragma on the
        line itself, in the comment block immediately above it, or on
        (or above) the ``def``/``class`` line of *symbol*."""
        if self._pragma_at(module, lineno, rule):
            return True
        if symbol is not None:
            info = self.functions.get(symbol) or self.classes.get(symbol)
            if info is not None and \
                    self._pragma_at(module, info.lineno, rule):
                return True
        return False

    @staticmethod
    def _pragma_at(module: ModuleInfo, lineno: int, rule: str) -> bool:
        def match(probe: int) -> bool:
            rules = module.pragmas.get(probe)
            if not rules:
                return False
            # exact rule id, its family prefix, or the wildcard
            return any(rule == allowed
                       or rule.startswith(allowed + "-")
                       or allowed == "*" for allowed in rules)

        if match(lineno):
            return True
        # walk the contiguous comment (or decorator) block above — the
        # conventional place for a pragma with a reason attached
        probe = lineno - 1
        while probe >= 1:
            text = module.source_lines[probe - 1].strip()
            if not (text.startswith("#") or text.startswith("@")):
                break
            if match(probe):
                return True
            probe -= 1
        return False

    def relpath(self, module: ModuleInfo) -> str:
        """Module path relative to the package root's parent — the path
        printed in reports and recorded in the baseline."""
        return str(module.path.relative_to(self.root.parent))


def _prefixed(node: ast.ClassDef, prefix: str) -> ast.ClassDef:
    """A shallow rename for nested classes: ``_Guard`` inside ``RWLock``
    registers as ``RWLock._Guard``."""
    import copy
    clone = copy.copy(node)
    clone.name = f"{prefix}.{node.name}"
    return clone
