"""A best-effort call graph over a loaded :class:`~.project.Project`,
with the reachability queries the rules are built on.

Edges come from four resolutions, in decreasing confidence:

* a call path whose root resolves through the module symbol table to a
  project function (``encode_commit_ops(...)``, ``wal.append(...)``);
* a resolved project *class* — treated as a call of its ``__init__``;
* ``self.method(...)`` — an edge to the enclosing class's method as
  Python would resolve it, plus every override in project subclasses
  (dynamic dispatch is over-approximated, never ignored);
* *name matching*, off by default: an unresolved attribute call
  ``obj.meth(...)`` can be linked to every project method named
  ``meth``.  Rules opt in per query with an explicit name set, so
  promiscuous names (``close``, ``get``) don't fuse the graph.

The central query is :meth:`CallGraph.reaches_avoiding` — "can *src*
reach *target* without passing through any *blocked* node?" — which is
how lock-protection ("every path from an entry point passes through an
acquire") and fork-safety ("nothing on the worker side reaches a lock")
are both phrased.
"""

from __future__ import annotations

from typing import Iterable

from .project import FunctionInfo, Project


class CallGraph:
    """Forward/reverse call edges plus unresolved-name call records."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: caller qualname -> set of callee qualnames (resolved edges)
        self.edges: dict[str, set[str]] = {}
        #: caller qualname -> terminal names of unresolved attr calls
        self.name_calls: dict[str, set[str]] = {}
        #: method name -> qualnames of every project method so named
        self._by_name: dict[str, set[str]] = {}
        for info in project.functions.values():
            self._build(info)
        self.reverse: dict[str, set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                self.reverse.setdefault(callee, set()).add(caller)

    # -- construction ---------------------------------------------------------

    def _build(self, info: FunctionInfo) -> None:
        project = self.project
        edges = self.edges.setdefault(info.qualname, set())
        names = self.name_calls.setdefault(info.qualname, set())
        if info.class_name is not None and info.parent is None:
            self._by_name.setdefault(info.name, set()).add(info.qualname)
        # defining a nested function may run it
        if info.parent is not None:
            self.edges.setdefault(info.parent, set()).add(info.qualname)
        for call in info.facts.calls:
            if call.root in ("self", "cls") and info.class_name is not None:
                segments = call.path.split(".")
                if len(segments) == 2:
                    self._link_method(edges, info.class_qualname or "",
                                      segments[1])
                else:
                    names.add(call.terminal)
                continue
            resolved = project.resolve(info.module, call.path)
            if resolved is None:
                if "." in call.path:
                    names.add(call.terminal)
                continue
            if resolved in project.functions:
                edges.add(resolved)
            elif resolved in project.classes:
                init = project.method_resolves(resolved, "__init__")
                if init is not None:
                    edges.add(init.qualname)
            elif "." in call.path:
                # resolved prefix, unknown suffix (os.fork, wal.append
                # where append is not top-level): fall back to a
                # Class.method interpretation before giving up
                prefix, _, method = resolved.rpartition(".")
                if prefix in project.classes:
                    self._link_method(edges, prefix, method)
                else:
                    names.add(call.terminal)

    def _link_method(self, edges: set[str], class_qualname: str,
                     method: str) -> None:
        project = self.project
        target = project.method_resolves(class_qualname, method)
        if target is not None:
            edges.add(target.qualname)
        # dynamic dispatch: every override in subclasses of the class
        for sub in project.subclasses.get(class_qualname, ()):  # noqa: B007
            sub_info = project.classes[sub]
            if method in sub_info.methods:
                edges.add(sub_info.methods[method].qualname)

    # -- queries --------------------------------------------------------------

    def _successors(self, node: str,
                    follow_names: frozenset[str]) -> Iterable[str]:
        yield from self.edges.get(node, ())
        if follow_names:
            for name in self.name_calls.get(node, ()):
                if name in follow_names:
                    yield from self._by_name.get(name, ())

    def reachable(self, roots: Iterable[str],
                  follow_names: Iterable[str] = ()) -> set[str]:
        """Every function reachable from *roots* along call edges.
        *follow_names* additionally links unresolved ``obj.meth(...)``
        calls to all project methods named ``meth``, for those names."""
        names = frozenset(follow_names)
        seen: set[str] = set()
        stack = [r for r in roots if r in self.project.functions]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(s for s in self._successors(node, names)
                         if s not in seen)
        return seen

    def reaches_avoiding(self, src: str, target: str,
                         blocked: frozenset[str],
                         follow_names: Iterable[str] = ()) -> bool:
        """Whether *src* can reach *target* along call edges without
        entering any node in *blocked*.  *src* or *target* being
        blocked means no: the path would pass through them."""
        if src in blocked or target in blocked:
            return False
        names = frozenset(follow_names)
        seen: set[str] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(s for s in self._successors(node, names)
                         if s not in seen and s not in blocked)
        return False

    def entry_points(self) -> list[str]:
        """Functions with no resolved project caller — the conservative
        root set for "every path from outside" queries.  Nested
        functions are excluded (their definer is their caller)."""
        roots = []
        for qualname, info in self.project.functions.items():
            if info.parent is not None:
                continue
            if not self.reverse.get(qualname):
                roots.append(qualname)
        return roots

    def callers_of(self, qualname: str) -> set[str]:
        return set(self.reverse.get(qualname, ()))

    def functions_calling_name(self, name: str) -> set[str]:
        """Callers recording an *unresolved* attribute call whose
        terminal is *name* — the conservative complement to resolved
        edges when a rule must not miss call sites."""
        return {caller for caller, names in self.name_calls.items()
                if name in names}
