"""``python -m repro.analysis`` — run the project lints.

Exit status is 0 when every finding is in the committed baseline (and
the mypy gate, when enforced, is no worse), 1 otherwise::

    python -m repro.analysis                 # human-readable report
    python -m repro.analysis --json          # machine-readable report
    python -m repro.analysis --rules hygiene,typing
    python -m repro.analysis --write-baseline  # re-triage
    python -m repro.analysis --mypy          # also run mypy --strict
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from . import analyze_tree, available_rules
from .baseline import Baseline, diff_violations, run_mypy
from .project import Project
from .rules import Violation


def _default_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parent


def _repo_root(package_root: Path) -> Path:
    # <repo>/src/<package> by convention; fall back to the package's
    # parent when the tree is laid out differently
    if package_root.parent.name == "src":
        return package_root.parent.parent
    return package_root.parent


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis "
                    "(lock discipline, WAL/wire exhaustiveness, kernel "
                    "purity, hygiene, strict typing).")
    parser.add_argument("--root", type=Path, default=None,
                        help="package directory to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file "
                             "(default: <repo>/analysis_baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="re-triage: write the current findings as "
                             "the new baseline and exit 0")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule families "
                             f"(default: all of "
                             f"{', '.join(available_rules())})")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report on stdout")
    parser.add_argument("--mypy", action="store_true",
                        help="also run mypy --strict over the gated "
                             "packages (skipped when mypy is not "
                             "installed)")
    args = parser.parse_args(argv)

    root = (args.root or _default_root()).resolve()
    repo_root = _repo_root(root)
    baseline_path = args.baseline or repo_root / "analysis_baseline.json"
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]

    project, violations = analyze_tree(root, rules=rules)
    baseline = Baseline.load(baseline_path)
    new, fixed = diff_violations(violations, baseline)

    mypy_errors: int | None = None
    mypy_ran = False
    mypy_output = ""
    if args.mypy:
        result = run_mypy(repo_root)
        if result is not None:
            mypy_ran = True
            mypy_errors, mypy_output = result
        elif not args.as_json:
            print("mypy --strict: skipped (mypy is not installed); "
                  "the annotation gate still ran via [typing-annotations]")

    if args.write_baseline:
        Baseline.write(baseline_path, violations,
                       mypy_errors if mypy_ran else baseline.mypy_errors)
        print(f"wrote {baseline_path} "
              f"({len(violations)} triaged finding(s))")
        return 0

    failed = bool(new)
    mypy_regressed = (
        mypy_ran and baseline.mypy_errors is not None
        and mypy_errors is not None
        and mypy_errors > baseline.mypy_errors)
    failed = failed or mypy_regressed
    if not baseline.exists and violations:
        failed = True

    if args.as_json:
        print(json.dumps(_json_report(
            project, violations, new, fixed, baseline, mypy_ran,
            mypy_errors, failed), indent=2))
    else:
        _text_report(violations, new, fixed, baseline, mypy_ran,
                     mypy_errors, mypy_output, mypy_regressed)
    return 1 if failed else 0


def _json_report(project: Project, violations: Sequence[Violation],
                 new: Sequence[Violation], fixed: Sequence[dict],
                 baseline: Baseline, mypy_ran: bool,
                 mypy_errors: int | None, failed: bool) -> dict:
    def as_dict(violation: Violation) -> dict:
        return {"fingerprint": violation.fingerprint,
                "rule": violation.rule, "path": violation.path,
                "line": violation.line, "symbol": violation.symbol,
                "message": violation.message}

    by_rule: dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    return {
        "modules": len(project.modules),
        "functions": len(project.functions),
        "violations": [as_dict(v) for v in violations],
        "by_rule": by_rule,
        "new": [as_dict(v) for v in new],
        "fixed_baseline_entries": fixed,
        "baseline": {"path": str(baseline.path),
                     "exists": baseline.exists,
                     "entries": len(baseline.fingerprints),
                     "mypy_errors": baseline.mypy_errors},
        "mypy": {"ran": mypy_ran, "errors": mypy_errors},
        "ok": not failed,
    }


def _text_report(violations: Sequence[Violation], new: Sequence[Violation],
                 fixed: Sequence[dict], baseline: Baseline, mypy_ran: bool,
                 mypy_errors: int | None, mypy_output: str,
                 mypy_regressed: bool) -> None:
    new_prints = {id(v) for v in new}
    for violation in violations:
        marker = "NEW " if id(violation) in new_prints else "     "
        print(f"{marker}{violation.render()}")
    if fixed:
        print(f"\n{len(fixed)} baselined finding(s) no longer present — "
              f"ratchet with --write-baseline:")
        for entry in fixed[:10]:
            print(f"  {entry.get('rule')}: {entry.get('path')} "
                  f"{entry.get('symbol')}")
    if mypy_ran:
        status = "REGRESSED" if mypy_regressed else "ok"
        recorded = baseline.mypy_errors
        print(f"\nmypy --strict: {mypy_errors} error(s) "
              f"(baseline: {recorded}) [{status}]")
        if mypy_regressed:
            print(mypy_output[-4000:])
    print(f"\n{len(violations)} finding(s), {len(new)} new, "
          f"{len(baseline.fingerprints)} baselined.")
    if new:
        print("FAIL: new findings — fix them, suppress with "
              "'# repro: allow(<rule>)' and a reason, or re-triage "
              "with --write-baseline.")
    else:
        print("OK: no new findings.")


if __name__ == "__main__":
    sys.exit(main())
