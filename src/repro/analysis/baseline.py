"""Baseline bookkeeping and the optional mypy bridge.

The committed ``analysis_baseline.json`` freezes the triaged findings:
CI fails on any violation whose fingerprint is *not* in the baseline,
and reports (without failing) baselined findings that disappeared so
the file can be ratcheted down.  Fingerprints exclude line numbers —
editing code above a finding does not make it "new".

``mypy --strict`` results ride the same mechanism: when mypy is
importable, :func:`run_mypy` runs it over the gated packages and the
error count is compared against the recorded ``mypy.errors``; when the
recorded value is ``null`` (no environment with mypy has written a
baseline yet) the count is reported but not enforced.  This keeps the
gate honest on machines without mypy instead of silently passing.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

from .rules import Violation

#: Packages under ``mypy --strict`` (paths relative to the repo root).
MYPY_GATED = ("src/repro/storage", "src/repro/engine", "src/repro/api",
              "src/repro/client", "src/repro/analysis")


@dataclass
class Baseline:
    """The parsed baseline file."""

    fingerprints: set[str] = field(default_factory=set)
    #: triaged entries, kept verbatim for the human reading the file
    entries: list[dict] = field(default_factory=list)
    mypy_errors: int | None = None
    path: Path | None = None
    exists: bool = False

    @classmethod
    def load(cls, path: "Path | str") -> "Baseline":
        path = Path(path)
        baseline = cls(path=path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return baseline
        baseline.exists = True
        baseline.entries = list(data.get("violations", ()))
        baseline.fingerprints = {
            entry["fingerprint"] for entry in baseline.entries
            if "fingerprint" in entry}
        mypy = data.get("mypy") or {}
        baseline.mypy_errors = mypy.get("errors")
        return baseline

    @staticmethod
    def write(path: "Path | str", violations: list[Violation],
              mypy_errors: int | None) -> None:
        data = {
            "version": 1,
            "comment": (
                "Triaged static-analysis baseline: CI fails on findings "
                "whose fingerprint is not listed here.  Regenerate with "
                "python -m repro.analysis --write-baseline after fixing "
                "or pragma-suppressing findings; never add entries by "
                "hand without a triage note in docs/invariants.md."),
            "violations": [
                {"fingerprint": v.fingerprint, "rule": v.rule,
                 "path": v.path, "symbol": v.symbol, "message": v.message}
                for v in violations],
            "mypy": {"errors": mypy_errors,
                     "gated": list(MYPY_GATED)},
        }
        Path(path).write_text(json.dumps(data, indent=2) + "\n",
                              encoding="utf-8")


def diff_violations(violations: list[Violation], baseline: Baseline
                    ) -> tuple[list[Violation], list[dict]]:
    """``(new, fixed)``: findings not in the baseline, and baseline
    entries no longer found (candidates for ratcheting)."""
    current = {v.fingerprint for v in violations}
    new = [v for v in violations
           if v.fingerprint not in baseline.fingerprints]
    fixed = [entry for entry in baseline.entries
             if entry.get("fingerprint") not in current]
    return new, fixed


def mypy_available() -> bool:
    import importlib.util
    return importlib.util.find_spec("mypy") is not None


def run_mypy(repo_root: "Path | str") -> "tuple[int, str] | None":
    """Run ``mypy --strict`` (via ``mypy.ini``) over the gated packages.

    Returns ``(error_count, output)`` or None when mypy is not
    installed — the caller reports the gate as skipped, not passed.
    """
    if not mypy_available():
        return None
    repo_root = Path(repo_root)
    targets = [str(repo_root / t) for t in MYPY_GATED
               if (repo_root / t).exists()]
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         str(repo_root / "mypy.ini"), *targets],
        capture_output=True, text=True, cwd=repo_root, check=False)
    output = proc.stdout + proc.stderr
    errors = sum(1 for line in output.splitlines()
                 if ": error:" in line)
    return errors, output
