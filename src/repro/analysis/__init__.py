"""Project-specific static analysis for the repro engine.

The engine accumulated cross-cutting invariants that no test suite can
exhaustively cover — catalog/plan-cache/store mutations must happen
under the Engine's RW lock (PR 4), every WAL op code needs matched
encode/decode/replay paths (PR 5), every wire message needs
encode+parse+test coverage (PR 6), vector kernels must stay pure
(PR 7), and nothing may hold a lock or fsync on the forked worker side
(PR 8).  This package machine-checks them on every CI run:

* :mod:`repro.analysis.project` — loads a package tree into parsed
  modules with symbol tables, qualified-name resolution and
  per-function facts (calls, ``with`` contexts, raises, excepts,
  attribute writes, annotations, suppression pragmas);
* :mod:`repro.analysis.callgraph` — a best-effort call graph with a
  reachability engine answering "can any entry point reach X without
  passing through Y?";
* :mod:`repro.analysis.rules` — the rule registry and the project
  checkers (lock-discipline, exhaustiveness, purity, hygiene, typing);
* :mod:`repro.analysis.baseline` — a committed, triaged baseline so CI
  fails on *new* violations only;
* ``python -m repro.analysis [--json] [--baseline FILE]`` — the CLI.

A finding can be suppressed in place with an inline pragma on the
offending line (or the enclosing ``def``/``class`` line)::

    message = pickle.loads(conn.recv_bytes())  # repro: allow(hygiene-pickle)

Suppressions should say *why* in a neighbouring comment; the catalogue
of checked invariants lives in ``docs/invariants.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from .baseline import Baseline, diff_violations
from .callgraph import CallGraph
from .project import FunctionInfo, ModuleInfo, Project
from .rules import AnalysisConfig, Violation, available_rules, run_rules

__all__ = [
    "AnalysisConfig",
    "Baseline",
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "Violation",
    "available_rules",
    "diff_violations",
    "run_rules",
    "analyze_tree",
]


def analyze_tree(root: Path | str, config: AnalysisConfig | None = None,
                 rules: Iterable[str] | None = None,
                 ) -> tuple[Project, list[Violation]]:
    """Load the package at *root* and run *rules* (default: all) over it.

    Returns ``(project, violations)`` — the loaded :class:`Project` and
    the sorted violation list.  This is the programmatic equivalent of
    ``python -m repro.analysis``.
    """
    project = Project.load(root)
    graph = CallGraph(project)
    return project, run_rules(project, graph, config=config, rules=rules)
