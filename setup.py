"""Setup shim: the offline environment lacks the ``wheel`` package, so the
legacy ``setup.py develop`` editable path is used (no [build-system] table
in pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Provenance for Nested Subqueries' "
        "(Glavic & Alonso, EDBT 2009)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    zip_safe=False,
    python_requires=">=3.10",
)
